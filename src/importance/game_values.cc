#include "importance/game_values.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "telemetry/health.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

/// Sorted copy helper: utilities accept any order, but we normalize anyway
/// so memoizing utilities can key on the subset directly.
std::vector<size_t> Sorted(std::vector<size_t> subset) {
  std::sort(subset.begin(), subset.end());
  return subset;
}

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double LogChoose(size_t n, size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

/// Standard error of the mean of `m` samples with the given sum and sum of
/// squares (0 when m < 2).
double MeanStdError(double sum, double sum_sq, double m) {
  if (m < 2.0) return 0.0;
  double mean = sum / m;
  double variance = (sum_sq / m - mean * mean) * m / (m - 1.0);
  return std::sqrt(std::max(variance, 0.0) / m);
}

/// True when the caller raised the cooperative-cancellation flag. Checked on
/// the coordinating thread at wave boundaries only, so cancellation composes
/// with the determinism contract exactly like a fault abort: completed waves
/// are kept, the cancelled run equals a clean smaller-budget run.
bool CancelRequested(const EstimatorOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

/// Per-job labeled twins of NDE_METRIC_COUNT / NDE_METRIC_RECORD: under a
/// job's TraceContext the sample lands in both the base metric and the
/// job-labeled series, so /metrics breaks the value out per job; outside a
/// job (CLI, tests) only the base metric moves and output is unchanged.
/// Called at wave boundaries, retry slow paths, and run ends — never per
/// utility evaluation — so the per-call registry lookup is irrelevant.
void CountForJob(const char* name, uint64_t delta) {
  if (!telemetry::Enabled()) return;
  telemetry::MetricsRegistry::Global()
      .GetCounterWithLabels(name, telemetry::CurrentJobLabels())
      .Increment(delta);
}

void RecordMsForJob(const char* name, double ms) {
  if (!telemetry::Enabled()) return;
  telemetry::MetricsRegistry::Global()
      .GetHistogramWithLabels(name, telemetry::CurrentJobLabels())
      .Record(ms);
}

/// One utility evaluation with bounded retry. Retries only *retryable*
/// failures (unavailable / resource_exhausted — a transient backend), with
/// capped exponential backoff: retry_backoff_ms, doubled per attempt, capped
/// at 10x the base. Non-finite values are data corruption and fail
/// immediately — the utility is deterministic, so retrying would return the
/// same poison. Passing the attempt number as the TryEvaluate salt re-rolls
/// an injected probabilistic fault deterministically, so a flaky-backend
/// simulation can succeed on retry and replay bit-identically.
Result<double> EvaluateWithRetry(const UtilityFunction& utility,
                                 const std::vector<size_t>& subset,
                                 const EstimatorOptions& options) {
  Status last;
  for (size_t attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) {
      CountForJob("estimator.retries", 1);
      uint64_t delay_ms = static_cast<uint64_t>(options.retry_backoff_ms)
                          << (attempt - 1);
      delay_ms = std::min<uint64_t>(
          delay_ms, uint64_t{10} * options.retry_backoff_ms);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    Result<double> value = utility.TryEvaluate(subset, attempt);
    if (value.ok()) {
      if (!std::isfinite(*value)) {
        Status poisoned =
            Status::Internal("utility produced a non-finite value");
        telemetry::SetDegraded(poisoned.ToString());
        return poisoned;
      }
      if (attempt > 0) telemetry::SetHealthy();  // Recovered on retry.
      return value;
    }
    last = value.status();
    telemetry::SetDegraded(last.ToString());
    if (!IsRetryable(last.code())) break;
  }
  return last;
}

/// Evaluates v over every subset of {0..n-1}; 2^n evaluations.
std::vector<double> EnumerateAllSubsets(const UtilityFunction& utility) {
  size_t n = utility.num_units();
  std::vector<double> values(size_t{1} << n);
  for (size_t mask = 0; mask < values.size(); ++mask) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back(i);
    }
    values[mask] = utility.Evaluate(subset);
  }
  return values;
}

}  // namespace

Result<std::vector<double>> LeaveOneOutValues(const UtilityFunction& utility,
                                              const EstimatorOptions& options) {
  size_t n = utility.num_units();
  if (n == 0) {
    return Status::InvalidArgument("leave-one-out requires at least one unit");
  }
  NDE_TRACE_SPAN_VAR(span, "LeaveOneOutValues", "importance");
  NDE_SPAN_ARG(span, "units", static_cast<int64_t>(n));
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  NDE_ASSIGN_OR_RETURN(double full, EvaluateWithRetry(utility, all, options));
  std::vector<double> values(n);
  // LOO has no sampling budget to shrink, so a failed unit has no meaningful
  // partial result: the first evaluation error (in unit order) is returned as
  // the call's Status.
  std::vector<Status> errors(n);
  // One task per unit, writing into its own slot: no randomness and no shared
  // accumulator, so results are identical for any thread count. Units run in
  // fixed 64-unit waves purely so progress can be reported at deterministic
  // boundaries; the per-unit work is unchanged.
  constexpr size_t kWaveUnits = 64;
  NDE_LOG(DEBUG) << "leave_one_out: " << n << " units";
  for (size_t wave_begin = 0; wave_begin < n; wave_begin += kWaveUnits) {
    // LOO has no partial-result notion (see the error comment above), so a
    // cancelled run surfaces as a plain Status rather than a partial vector.
    if (CancelRequested(options)) {
      return Status::Cancelled("leave_one_out cancelled");
    }
    size_t wave_end = std::min(wave_begin + kWaveUnits, n);
    // Wave-phase observability: latency into the shared estimator histogram,
    // allocations attributed to this phase (coordinator side; workers tag
    // their own scopes inside the task). Purely observational.
    telemetry::AllocationScope wave_alloc("loo_wave");
    [[maybe_unused]] int64_t wave_start_us =
        telemetry::Enabled() ? telemetry::NowMicros() : 0;
    NDE_ASSIGN_OR_RETURN(
        size_t used,
        TryParallelFor(
            wave_begin, wave_end,
            [&](size_t i) {
              telemetry::AllocationScope unit_alloc("loo_unit");
              std::vector<size_t> subset;
              subset.reserve(n - 1);
              for (size_t j = 0; j < n; ++j) {
                if (j != i) subset.push_back(j);
              }
              Result<double> without = EvaluateWithRetry(utility, subset,
                                                         options);
              if (!without.ok()) {
                errors[i] = without.status();
                return;
              }
              values[i] = full - *without;
            },
            options.num_threads, "leave_one_out"));
    (void)used;
    RecordMsForJob(
        "estimator.wave_ms",
        static_cast<double>(telemetry::NowMicros() - wave_start_us) / 1000.0);
    for (size_t i = wave_begin; i < wave_end; ++i) {
      if (!errors[i].ok()) {
        NDE_LOG(WARNING) << "leave_one_out aborted at unit " << i << ": "
                         << errors[i].ToString();
        return errors[i];
      }
    }
    if (options.progress) {
      ProgressUpdate update;
      update.phase = "leave_one_out";
      update.completed = wave_end;
      update.total = n;
      update.utility_evaluations = wave_end + 1;  // + the full-set baseline
      options.progress(update);
    }
  }
  return values;
}

Result<ImportanceEstimate> TmcShapleyValues(const UtilityFunction& utility,
                                            const TmcShapleyOptions& options) {
  size_t n = utility.num_units();
  if (n == 0) {
    return Status::InvalidArgument("TMC-Shapley requires at least one unit");
  }
  if (options.num_permutations == 0) {
    return Status::InvalidArgument(
        "TMC-Shapley requires at least one permutation");
  }
  NDE_TRACE_SPAN_VAR(span, "TmcShapleyValues", "importance");
  NDE_ASSIGN_OR_RETURN(double empty_utility,
                       EvaluateWithRetry(utility, {}, options));
  std::vector<size_t> all_units(n);
  std::iota(all_units.begin(), all_units.end(), size_t{0});
  NDE_ASSIGN_OR_RETURN(double full_utility,
                       EvaluateWithRetry(utility, all_units, options));

  // Permutation t always draws from stream SeedFor(t) and waves always span
  // the same permutation indices, so both the sampled marginals and the
  // convergence decision are independent of the thread count.
  SeedSequence seeds(options.seed);
  constexpr size_t kWavePermutations = 32;

  struct PermutationPartial {
    std::vector<double> marginals;
    size_t evaluations = 0;
    Status error;  ///< First evaluation failure inside this permutation.
  };

  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);
  size_t evaluations = 2;  // empty + full, evaluated above on this thread
  size_t executed = 0;
  size_t threads_used = 1;
  bool aborted = false;
  Status abort_cause;
  std::vector<PermutationPartial> wave(
      std::min(kWavePermutations, options.num_permutations));

  while (executed < options.num_permutations) {
    if (CancelRequested(options)) {
      aborted = true;
      abort_cause = Status::Cancelled("tmc_shapley cancelled");
      break;
    }
    size_t wave_begin = executed;
    size_t wave_end =
        std::min(wave_begin + kWavePermutations, options.num_permutations);
    telemetry::AllocationScope wave_alloc("tmc_wave");
    [[maybe_unused]] int64_t wave_start_us =
        telemetry::Enabled() ? telemetry::NowMicros() : 0;
    for (auto& partial : wave) {
      partial.marginals.assign(n, 0.0);
      partial.evaluations = 0;
      partial.error = Status::OK();
    }
    Result<size_t> used = TryParallelFor(
        wave_begin, wave_end,
        [&](size_t t) {
          // One complete-event per permutation: the trace shows where sampling
          // time goes and how hard truncation is biting, task by task.
          NDE_TRACE_SPAN_VAR(perm_span, "tmc_permutation", "importance");
          telemetry::AllocationScope perm_alloc("tmc_permutation");
          PermutationPartial& out = wave[t - wave_begin];
          Rng rng = seeds.RngFor(t);
          std::vector<size_t> perm = rng.Permutation(n);
          // A prefix scan is an incremental state machine, so a failed Push
          // cannot be retried in place. A transient fault at position P
          // instead re-runs the permutation against a fresh scan, replaying
          // the already-succeeded prefix silently (exact scans make the
          // replay idempotent, and settled fault decisions are not re-taken)
          // and re-rolling only position P's decision — keyed by permutation
          // x position x attempt, schedule-invariant for replay. Each
          // evaluation gets the same bounded budget and counted, capped
          // backoff as EvaluateWithRetry, which handles the non-scan path.
          Status failure;
          size_t resume_pos = 0;     // First position still owed a decision.
          size_t fail_attempts = 0;  // Failed attempts at resume_pos so far.
          for (;;) {
            if (fail_attempts > 0) {
              NDE_METRIC_COUNT("estimator.retries", 1);
              uint64_t delay_ms =
                  static_cast<uint64_t>(options.retry_backoff_ms)
                  << (fail_attempts - 1);
              delay_ms = std::min<uint64_t>(
                  delay_ms, uint64_t{10} * options.retry_backoff_ms);
              if (delay_ms > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
              }
            }
            // Prefix-scan fast path: the permutation grows one coalition a
            // unit at a time, so a utility offering an incremental scan
            // evaluates each prefix without retraining from scratch. Exact
            // scans are bit-identical to Evaluate; approximate warm-started
            // scans are only handed out when options.warm_start opted in.
            std::unique_ptr<UtilityFunction::PrefixScan> scan =
                options.use_prefix_scan
                    ? utility.NewPrefixScan(options.warm_start)
                    : nullptr;
            failure = Status::OK();
            size_t failed_at = 0;
            std::vector<size_t> prefix;
            // Only the slow per-prefix Evaluate path grows this vector; the
            // scan path stays allocation-free, so reserve lazily.
            if (scan == nullptr) prefix.reserve(n);
            double previous = empty_utility;
            bool truncated = false;
            for (size_t pos = 0; pos < n && failure.ok(); ++pos) {
              size_t unit = perm[pos];
              double marginal = 0.0;
              if (!truncated) {
                if (options.truncation_tolerance > 0.0 &&
                    std::fabs(full_utility - previous) <
                        options.truncation_tolerance) {
                  truncated = true;  // Remaining marginals are zero.
                  CountForJob("shapley.truncation_hits", 1);
                  NDE_SPAN_ARG(perm_span, "truncated_at",
                               static_cast<int64_t>(pos));
                } else {
                  double current;
                  if (scan != nullptr) {
                    if (failpoint::AnyArmed() && pos >= resume_pos) {
                      size_t attempt = pos == resume_pos ? fail_attempts : 0;
                      failpoint::Outcome fp = failpoint::Fire(
                          "utility.evaluate",
                          failpoint::MixKey(failpoint::MixKey(t, pos),
                                            attempt));
                      if (fp.kind == failpoint::Outcome::kNanPoison) {
                        failure = Status::Internal(
                            "utility produced a non-finite value");
                        failed_at = pos;
                        break;
                      }
                      if (fp.fired()) {
                        failure = fp.status;
                        failed_at = pos;
                        break;
                      }
                    }
                    current = scan->Push(unit);
                    if (!std::isfinite(current)) {
                      failure = Status::Internal(
                          "utility produced a non-finite value");
                      failed_at = pos;
                      break;
                    }
                  } else {
                    prefix.push_back(unit);
                    Result<double> value =
                        EvaluateWithRetry(utility, Sorted(prefix), options);
                    if (!value.ok()) {
                      failure = value.status();
                      break;
                    }
                    current = *value;
                  }
                  ++out.evaluations;
                  marginal = current - previous;
                  previous = current;
                }
              }
              out.marginals[unit] = marginal;
            }
            if (failure.ok()) {
              if (fail_attempts > 0) telemetry::SetHealthy();
              break;
            }
            telemetry::SetDegraded(failure.ToString());
            if (scan == nullptr || !IsRetryable(failure.code())) break;
            if (failed_at != resume_pos) {
              resume_pos = failed_at;  // Fresh evaluation, fresh budget.
              fail_attempts = 0;
            }
            if (fail_attempts >= options.max_retries) break;
            ++fail_attempts;
          }
          out.error = failure;
          NDE_SPAN_ARG(perm_span, "permutation", static_cast<int64_t>(t));
          NDE_SPAN_ARG(perm_span, "evaluations",
                       static_cast<int64_t>(out.evaluations));
        },
        options.num_threads, "tmc_wave");
    if (!used.ok()) {
      aborted = true;
      abort_cause = used.status();
      break;
    }
    threads_used = std::max(threads_used, *used);
    RecordMsForJob(
        "estimator.wave_ms",
        static_cast<double>(telemetry::NowMicros() - wave_start_us) / 1000.0);

    // A failed wave is discarded whole (in index order, so the abort cause is
    // schedule-invariant): the estimate then covers exactly the permutations
    // a clean run with a smaller budget would have used.
    for (size_t t = wave_begin; t < wave_end && !aborted; ++t) {
      if (!wave[t - wave_begin].error.ok()) {
        aborted = true;
        abort_cause = wave[t - wave_begin].error;
      }
    }
    if (aborted) break;

    // Deterministic reduction: fold permutation partials in index order.
    for (size_t t = wave_begin; t < wave_end; ++t) {
      const PermutationPartial& partial = wave[t - wave_begin];
      for (size_t i = 0; i < n; ++i) {
        double marginal = partial.marginals[i];
        sum[i] += marginal;
        sum_sq[i] += marginal * marginal;
      }
      evaluations += partial.evaluations;
    }
    executed = wave_end;

    // One max-std-error per wave serves both the convergence decision
    // (max <= tol is equivalent to "every unit's error <= tol") and the
    // progress callback, so installing a callback cannot change when the
    // estimator stops.
    double max_std_error = 0.0;
    bool want_error = options.convergence_tolerance > 0.0 ||
                      static_cast<bool>(options.progress);
    if (want_error && executed > 1) {
      double m = static_cast<double>(executed);
      for (size_t i = 0; i < n; ++i) {
        max_std_error =
            std::max(max_std_error, MeanStdError(sum[i], sum_sq[i], m));
      }
    }
    if (options.progress) {
      ProgressUpdate update;
      update.phase = "tmc_shapley";
      update.completed = executed;
      update.total = options.num_permutations;
      update.utility_evaluations = evaluations;
      update.max_std_error = max_std_error;
      options.progress(update);
    }
    if (options.convergence_tolerance > 0.0 && executed > 1 &&
        max_std_error <= options.convergence_tolerance) {
      NDE_LOG(INFO) << "tmc_shapley converged after " << executed << "/"
                    << options.num_permutations
                    << " permutations (max std error " << max_std_error
                    << " <= " << options.convergence_tolerance << ")";
      break;
    }
  }
  CountForJob("shapley.permutations", executed);
  CountForJob("shapley.utility_evaluations", evaluations);
  NDE_SPAN_ARG(span, "units", static_cast<int64_t>(n));
  NDE_SPAN_ARG(span, "permutations", static_cast<int64_t>(executed));
  NDE_SPAN_ARG(span, "evaluations", static_cast<int64_t>(evaluations));
  NDE_SPAN_ARG(span, "threads", static_cast<int64_t>(threads_used));
  if (aborted) {
    NDE_METRIC_COUNT("estimator.aborted", 1);
    telemetry::SetDegraded(abort_cause.ToString());
    NDE_LOG(WARNING) << "tmc_shapley aborted after " << executed << "/"
                     << options.num_permutations
                     << " permutations: " << abort_cause.ToString();
    if (executed == 0) return abort_cause;  // Nothing usable to report.
  }

  ImportanceEstimate estimate;
  estimate.values.resize(n);
  estimate.std_errors.resize(n);
  double m = static_cast<double>(executed);
  for (size_t i = 0; i < n; ++i) {
    estimate.values[i] = sum[i] / m;
    estimate.std_errors[i] = MeanStdError(sum[i], sum_sq[i], m);
  }
  estimate.utility_evaluations = evaluations;
  estimate.num_threads_used = threads_used;
  estimate.aborted_early = aborted;
  estimate.abort_cause = abort_cause;
  NDE_METRIC_GAUGE_SET(
      "shapley.max_std_error",
      estimate.std_errors.empty()
          ? 0.0
          : *std::max_element(estimate.std_errors.begin(),
                              estimate.std_errors.end()));
  return estimate;
}

Result<std::vector<double>> ExactShapleyValues(const UtilityFunction& utility,
                                               size_t max_units) {
  size_t n = utility.num_units();
  if (n > max_units || n > 24) {
    return Status::InvalidArgument(
        StrFormat("exact Shapley is exponential; n=%zu exceeds cap %zu", n,
                  std::min(max_units, size_t{24})));
  }
  std::vector<double> subset_values = EnumerateAllSubsets(utility);
  // Precompute |S|!(n-|S|-1)!/n! per cardinality.
  std::vector<double> weight(n);
  for (size_t s = 0; s < n; ++s) {
    weight[s] = std::exp(std::lgamma(static_cast<double>(s) + 1.0) +
                         std::lgamma(static_cast<double>(n - s)) -
                         std::lgamma(static_cast<double>(n) + 1.0));
  }
  std::vector<double> values(n, 0.0);
  size_t full = size_t{1} << n;
  for (size_t mask = 0; mask < full; ++mask) {
    size_t cardinality = static_cast<size_t>(__builtin_popcountll(mask));
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) continue;
      double marginal =
          subset_values[mask | (size_t{1} << i)] - subset_values[mask];
      values[i] += weight[cardinality] * marginal;
    }
  }
  return values;
}

Result<ImportanceEstimate> BanzhafValues(const UtilityFunction& utility,
                                         const BanzhafOptions& options) {
  size_t n = utility.num_units();
  if (n == 0) {
    return Status::InvalidArgument("Banzhaf MSR requires at least one unit");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("Banzhaf MSR requires at least one sample");
  }
  NDE_TRACE_SPAN_VAR(span, "BanzhafValues", "importance");

  // MSR: every sample updates every unit's in-mean or out-mean. Samples run
  // as fixed 16-sample chunks; sample t always draws from stream SeedFor(t)
  // and the convergence check sits at fixed 8-chunk wave boundaries, so both
  // are thread-count invariant.
  SeedSequence seeds(options.seed);
  constexpr size_t kChunkSamples = 16;
  constexpr size_t kWaveChunks = 8;

  struct ChunkPartial {
    std::vector<double> in_sum, in_sq, out_sum, out_sq;
    std::vector<size_t> in_count, out_count;
    Status error;  ///< First evaluation failure inside this chunk.
  };

  std::vector<double> in_sum(n, 0.0), in_sq(n, 0.0);
  std::vector<double> out_sum(n, 0.0), out_sq(n, 0.0);
  std::vector<size_t> in_count(n, 0), out_count(n, 0);

  size_t num_chunks = (options.num_samples + kChunkSamples - 1) / kChunkSamples;
  size_t chunk_cursor = 0;
  size_t executed_samples = 0;
  size_t threads_used = 1;
  bool aborted = false;
  Status abort_cause;
  std::vector<ChunkPartial> wave(std::min(kWaveChunks, num_chunks));

  while (chunk_cursor < num_chunks) {
    if (CancelRequested(options)) {
      aborted = true;
      abort_cause = Status::Cancelled("banzhaf cancelled");
      break;
    }
    size_t wave_begin = chunk_cursor;
    size_t wave_end = std::min(wave_begin + kWaveChunks, num_chunks);
    telemetry::AllocationScope wave_alloc("banzhaf_wave");
    [[maybe_unused]] int64_t wave_start_us =
        telemetry::Enabled() ? telemetry::NowMicros() : 0;
    for (auto& partial : wave) {
      partial.in_sum.assign(n, 0.0);
      partial.in_sq.assign(n, 0.0);
      partial.out_sum.assign(n, 0.0);
      partial.out_sq.assign(n, 0.0);
      partial.in_count.assign(n, 0);
      partial.out_count.assign(n, 0);
      partial.error = Status::OK();
    }
    Result<size_t> used = TryParallelFor(
        wave_begin, wave_end,
        [&](size_t c) {
          telemetry::AllocationScope chunk_alloc("banzhaf_chunk");
          ChunkPartial& out = wave[c - wave_begin];
          size_t sample_begin = c * kChunkSamples;
          size_t sample_end =
              std::min(sample_begin + kChunkSamples, options.num_samples);
          // Chunks are traced (not samples) so a large num_samples does not
          // flood the bounded trace buffer with per-sample events.
          NDE_TRACE_SPAN_VAR(batch_span, "banzhaf_sample_batch", "importance");
          NDE_SPAN_ARG(batch_span, "samples",
                       static_cast<int64_t>(sample_end - sample_begin));
          std::vector<size_t> subset;
          std::vector<bool> member(n);
          for (size_t t = sample_begin; t < sample_end; ++t) {
            Rng rng = seeds.RngFor(t);
            subset.clear();
            for (size_t i = 0; i < n; ++i) {
              member[i] = rng.NextBernoulli(0.5);
              if (member[i]) subset.push_back(i);
            }
            Result<double> evaluated =
                EvaluateWithRetry(utility, subset, options);
            if (!evaluated.ok()) {
              out.error = evaluated.status();
              return;  // The whole chunk is discarded with its wave.
            }
            double value = *evaluated;
            for (size_t i = 0; i < n; ++i) {
              if (member[i]) {
                out.in_sum[i] += value;
                out.in_sq[i] += value * value;
                ++out.in_count[i];
              } else {
                out.out_sum[i] += value;
                out.out_sq[i] += value * value;
                ++out.out_count[i];
              }
            }
          }
        },
        options.num_threads, "banzhaf_wave");
    if (!used.ok()) {
      aborted = true;
      abort_cause = used.status();
      break;
    }
    threads_used = std::max(threads_used, *used);
    RecordMsForJob(
        "estimator.wave_ms",
        static_cast<double>(telemetry::NowMicros() - wave_start_us) / 1000.0);

    // Discard a failed wave whole (first error in chunk-index order wins) so
    // the partial estimate matches a clean smaller-budget run exactly.
    for (size_t c = wave_begin; c < wave_end && !aborted; ++c) {
      if (!wave[c - wave_begin].error.ok()) {
        aborted = true;
        abort_cause = wave[c - wave_begin].error;
      }
    }
    if (aborted) break;

    // Deterministic reduction: fold chunk partials in index order.
    for (size_t c = wave_begin; c < wave_end; ++c) {
      const ChunkPartial& partial = wave[c - wave_begin];
      for (size_t i = 0; i < n; ++i) {
        in_sum[i] += partial.in_sum[i];
        in_sq[i] += partial.in_sq[i];
        out_sum[i] += partial.out_sum[i];
        out_sq[i] += partial.out_sq[i];
        in_count[i] += partial.in_count[i];
        out_count[i] += partial.out_count[i];
      }
      executed_samples +=
          std::min((c + 1) * kChunkSamples, options.num_samples) -
          c * kChunkSamples;
    }
    chunk_cursor = wave_end;

    // Shared once-per-wave error scan (see the TMC loop): the estimate is
    // estimable only when every unit has >= 2 in- and out-samples, and the
    // stopping decision "estimable && max <= tol" is exactly the old
    // per-unit early-exit check.
    double max_std_error = 0.0;
    bool estimable = true;
    bool want_error = options.convergence_tolerance > 0.0 ||
                      static_cast<bool>(options.progress);
    if (want_error) {
      for (size_t i = 0; i < n; ++i) {
        if (in_count[i] < 2 || out_count[i] < 2) {
          estimable = false;
          max_std_error = 0.0;
          break;
        }
        double in_err = MeanStdError(in_sum[i], in_sq[i],
                                     static_cast<double>(in_count[i]));
        double out_err = MeanStdError(out_sum[i], out_sq[i],
                                      static_cast<double>(out_count[i]));
        max_std_error = std::max(
            max_std_error, std::sqrt(in_err * in_err + out_err * out_err));
      }
    }
    if (options.progress) {
      ProgressUpdate update;
      update.phase = "banzhaf";
      update.completed = executed_samples;
      update.total = options.num_samples;
      update.utility_evaluations = executed_samples;
      update.max_std_error = estimable ? max_std_error : 0.0;
      options.progress(update);
    }
    if (options.convergence_tolerance > 0.0 && estimable &&
        max_std_error <= options.convergence_tolerance) {
      NDE_LOG(INFO) << "banzhaf converged after " << executed_samples << "/"
                    << options.num_samples << " samples (max std error "
                    << max_std_error << " <= "
                    << options.convergence_tolerance << ")";
      break;
    }
  }
  CountForJob("banzhaf.samples", executed_samples);
  NDE_SPAN_ARG(span, "units", static_cast<int64_t>(n));
  NDE_SPAN_ARG(span, "samples", static_cast<int64_t>(executed_samples));
  NDE_SPAN_ARG(span, "threads", static_cast<int64_t>(threads_used));
  if (aborted) {
    NDE_METRIC_COUNT("estimator.aborted", 1);
    telemetry::SetDegraded(abort_cause.ToString());
    NDE_LOG(WARNING) << "banzhaf aborted after " << executed_samples << "/"
                     << options.num_samples
                     << " samples: " << abort_cause.ToString();
    if (executed_samples == 0) return abort_cause;
  }

  ImportanceEstimate estimate;
  estimate.values.resize(n, 0.0);
  estimate.std_errors.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (in_count[i] == 0 || out_count[i] == 0) continue;
    double in_mean = in_sum[i] / static_cast<double>(in_count[i]);
    double out_mean = out_sum[i] / static_cast<double>(out_count[i]);
    estimate.values[i] = in_mean - out_mean;
    double in_err =
        MeanStdError(in_sum[i], in_sq[i], static_cast<double>(in_count[i]));
    double out_err =
        MeanStdError(out_sum[i], out_sq[i], static_cast<double>(out_count[i]));
    estimate.std_errors[i] = std::sqrt(in_err * in_err + out_err * out_err);
  }
  estimate.utility_evaluations = executed_samples;
  estimate.num_threads_used = threads_used;
  estimate.aborted_early = aborted;
  estimate.abort_cause = abort_cause;
  return estimate;
}

Result<std::vector<double>> ExactBanzhafValues(const UtilityFunction& utility,
                                               size_t max_units) {
  size_t n = utility.num_units();
  if (n > max_units || n > 24) {
    return Status::InvalidArgument(
        StrFormat("exact Banzhaf is exponential; n=%zu exceeds cap %zu", n,
                  std::min(max_units, size_t{24})));
  }
  std::vector<double> subset_values = EnumerateAllSubsets(utility);
  std::vector<double> values(n, 0.0);
  size_t full = size_t{1} << n;
  double scale = 1.0 / static_cast<double>(size_t{1} << (n - 1));
  for (size_t mask = 0; mask < full; ++mask) {
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) continue;
      values[i] +=
          (subset_values[mask | (size_t{1} << i)] - subset_values[mask]) *
          scale;
    }
  }
  return values;
}

std::vector<double> BetaShapleyCardinalityWeights(size_t n, double alpha,
                                                  double beta) {
  NDE_CHECK_GT(n, 0u);
  NDE_CHECK_GT(alpha, 0.0);
  NDE_CHECK_GT(beta, 0.0);
  // P(|S| = j) proportional to C(n-1, j) * B(j + beta, n - 1 - j + alpha),
  // which for (alpha, beta) = (1, 1) is the uniform Shapley distribution.
  std::vector<double> log_weights(n);
  double max_log = -1e300;
  for (size_t j = 0; j < n; ++j) {
    log_weights[j] =
        LogChoose(n - 1, j) + LogBeta(static_cast<double>(j) + beta,
                                      static_cast<double>(n - 1 - j) + alpha);
    max_log = std::max(max_log, log_weights[j]);
  }
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t j = 0; j < n; ++j) {
    weights[j] = std::exp(log_weights[j] - max_log);
    total += weights[j];
  }
  for (double& w : weights) w /= total;
  return weights;
}

Result<ImportanceEstimate> BetaShapleyValues(
    const UtilityFunction& utility, const BetaShapleyOptions& options) {
  size_t n = utility.num_units();
  if (n == 0) {
    return Status::InvalidArgument("Beta-Shapley requires at least one unit");
  }
  if (options.samples_per_unit == 0) {
    return Status::InvalidArgument(
        "Beta-Shapley requires at least one sample per unit");
  }
  NDE_TRACE_SPAN_VAR(span, "BetaShapleyValues", "importance");
  std::vector<double> cardinality_weights =
      BetaShapleyCardinalityWeights(n, options.alpha, options.beta);

  // One task per unit with its own Rng stream; each unit converges on its own
  // samples only, so per-unit results never depend on the thread count.
  SeedSequence seeds(options.seed);
  constexpr size_t kMinSamplesForConvergence = 8;

  struct UnitPartial {
    double mean = 0.0;
    double std_error = 0.0;
    size_t evaluations = 0;
    Status error;  ///< First evaluation failure while sampling this unit.
  };
  std::vector<UnitPartial> units(n);

  // Units run in fixed 16-unit waves so progress can be reported at
  // deterministic boundaries. Each unit's Rng stream is keyed by its index
  // and each unit converges on its own samples only, so the wave grouping
  // changes scheduling, never results.
  constexpr size_t kWaveUnits = 16;
  size_t threads_used = 1;
  size_t evaluations_so_far = 0;
  double max_std_error = 0.0;
  bool aborted = false;
  Status abort_cause;
  size_t completed_units = 0;
  for (size_t wave_begin = 0; wave_begin < n; wave_begin += kWaveUnits) {
    if (CancelRequested(options)) {
      aborted = true;
      abort_cause = Status::Cancelled("beta_shapley cancelled");
      break;
    }
    size_t wave_end = std::min(wave_begin + kWaveUnits, n);
    telemetry::AllocationScope wave_alloc("beta_shapley_wave");
    [[maybe_unused]] int64_t wave_start_us =
        telemetry::Enabled() ? telemetry::NowMicros() : 0;
    Result<size_t> used = TryParallelFor(
        wave_begin, wave_end,
        [&](size_t i) {
          NDE_TRACE_SPAN_VAR(unit_span, "beta_shapley_unit", "importance");
          telemetry::AllocationScope unit_alloc("beta_shapley_unit");
          NDE_SPAN_ARG(unit_span, "unit", static_cast<int64_t>(i));
          Rng rng = seeds.RngFor(i);
          std::vector<size_t> others;
          others.reserve(n - 1);
          for (size_t j = 0; j < n; ++j) {
            if (j != i) others.push_back(j);
          }
          double sum = 0.0;
          double sum_sq = 0.0;
          size_t samples = 0;
          for (size_t s = 0; s < options.samples_per_unit; ++s) {
            size_t cardinality = rng.NextCategorical(cardinality_weights);
            std::vector<size_t> picks =
                rng.SampleWithoutReplacement(others.size(), cardinality);
            std::vector<size_t> subset;
            subset.reserve(cardinality + 1);
            for (size_t p : picks) subset.push_back(others[p]);
            Result<double> without =
                EvaluateWithRetry(utility, Sorted(subset), options);
            if (!without.ok()) {
              units[i].error = without.status();
              return;  // The unit's wave is discarded whole below.
            }
            subset.push_back(i);
            Result<double> with =
                EvaluateWithRetry(utility, Sorted(subset), options);
            if (!with.ok()) {
              units[i].error = with.status();
              return;
            }
            double marginal = *with - *without;
            sum += marginal;
            sum_sq += marginal * marginal;
            ++samples;
            if (options.convergence_tolerance > 0.0 &&
                samples >= kMinSamplesForConvergence &&
                MeanStdError(sum, sum_sq, static_cast<double>(samples)) <=
                    options.convergence_tolerance) {
              break;
            }
          }
          double m = static_cast<double>(samples);
          UnitPartial& out = units[i];
          out.mean = sum / m;
          out.std_error = MeanStdError(sum, sum_sq, m);
          out.evaluations = 2 * samples;
          NDE_SPAN_ARG(unit_span, "std_error", out.std_error);
        },
        options.num_threads, "beta_shapley_units");
    if (!used.ok()) {
      aborted = true;
      abort_cause = used.status();
      break;
    }
    threads_used = std::max(threads_used, *used);
    RecordMsForJob(
        "estimator.wave_ms",
        static_cast<double>(telemetry::NowMicros() - wave_start_us) / 1000.0);
    // Discard a failed wave whole (first error in unit-index order wins): the
    // discarded units report value 0 / std error 0, exactly like units a
    // clean smaller run never reached.
    for (size_t i = wave_begin; i < wave_end && !aborted; ++i) {
      if (!units[i].error.ok()) {
        aborted = true;
        abort_cause = units[i].error;
      }
    }
    if (aborted) {
      for (size_t i = wave_begin; i < wave_end; ++i) units[i] = UnitPartial{};
      break;
    }
    completed_units = wave_end;
    // Index-order fold of the wave's partials (deterministic, and cheap
    // enough to do even with no callback installed).
    for (size_t i = wave_begin; i < wave_end; ++i) {
      evaluations_so_far += units[i].evaluations;
      max_std_error = std::max(max_std_error, units[i].std_error);
    }
    if (options.progress) {
      ProgressUpdate update;
      update.phase = "beta_shapley";
      update.completed = wave_end;
      update.total = n;
      update.utility_evaluations = evaluations_so_far;
      update.max_std_error = max_std_error;
      options.progress(update);
    }
  }

  if (aborted) {
    NDE_METRIC_COUNT("estimator.aborted", 1);
    telemetry::SetDegraded(abort_cause.ToString());
    NDE_LOG(WARNING) << "beta_shapley aborted after " << completed_units << "/"
                     << n << " units: " << abort_cause.ToString();
    if (completed_units == 0) return abort_cause;
  }

  ImportanceEstimate estimate;
  estimate.values.resize(n, 0.0);
  estimate.std_errors.resize(n, 0.0);
  size_t evaluations = 0;
  for (size_t i = 0; i < n; ++i) {
    estimate.values[i] = units[i].mean;
    estimate.std_errors[i] = units[i].std_error;
    evaluations += units[i].evaluations;
  }
  estimate.utility_evaluations = evaluations;
  estimate.num_threads_used = threads_used;
  estimate.aborted_early = aborted;
  estimate.abort_cause = abort_cause;
  CountForJob("beta_shapley.utility_evaluations", evaluations);
  NDE_SPAN_ARG(span, "threads", static_cast<int64_t>(threads_used));
  return estimate;
}

}  // namespace nde
