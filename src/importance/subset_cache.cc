#include "importance/subset_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash of one element.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t OrderIndependentSubsetHash::operator()(
    const std::vector<size_t>& subset) const {
  // Commutative fold (+) keeps the hash order-independent; the size term
  // separates e.g. {} from nothing-at-all and cheapens prefix collisions.
  uint64_t h = Mix64(subset.size());
  for (size_t element : subset) h += Mix64(element);
  return static_cast<size_t>(h);
}

SubsetCache::SubsetCache(SubsetCacheOptions options) : options_(options) {
  NDE_CHECK_GE(options_.num_shards, 1u);
  NDE_CHECK_GE(options_.max_entries, options_.num_shards);
  per_shard_capacity_ = options_.max_entries / options_.num_shards;
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Resolve the telemetry counters once, here: this both pre-registers them
  // so `nde_cli --metrics` lists them (at zero) before the first evaluation
  // lands, and attaches the owning job's labels (CurrentJobLabels is empty —
  // base-only counting — outside a job) without any lookup on the hot path.
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  telemetry::MetricLabels labels = telemetry::CurrentJobLabels();
  hit_counter_ = registry.GetCounterWithLabels("utility_cache.hits", labels);
  miss_counter_ =
      registry.GetCounterWithLabels("utility_cache.misses", labels);
  eviction_counter_ =
      registry.GetCounterWithLabels("utility_cache.evictions", labels);
}

double SubsetCache::GetOrCompute(const std::vector<size_t>& subset,
                                 const std::function<double()>& compute) {
  // Canonicalize to sorted form so key equality matches the order-independent
  // hash. Estimators already pass sorted subsets, making this a linear scan.
  std::vector<size_t> key;
  const std::vector<size_t>* lookup = &subset;
  if (!std::is_sorted(subset.begin(), subset.end())) {
    key = subset;
    std::sort(key.begin(), key.end());
    lookup = &key;
  }

  uint64_t hash = OrderIndependentSubsetHash{}(*lookup);
  Shard& shard = *shards_[hash % options_.num_shards];
  // Hash once, reuse everywhere: the shard pick above and the transparent
  // map probe below both consume this value, and no vector key exists until
  // a miss inserts one.
  const SubsetKeyView probe{lookup->data(), lookup->size(), hash};

  // Cache-op latency is only clocked when telemetry is on: the probe path is
  // hot (one per utility evaluation with the cache enabled), and two clock
  // reads per probe would be measurable there.
  [[maybe_unused]] const bool timed = telemetry::Enabled();
  [[maybe_unused]] int64_t probe_start_us = timed ? telemetry::NowMicros() : 0;
  bool hit = false;
  double cached = 0.0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.values.find(probe);
    if (it != shard.values.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit = true;
      cached = it->second;
    }
  }
  if (timed) {
    NDE_METRIC_RECORD(
        "utility_cache.op_ms",
        static_cast<double>(telemetry::NowMicros() - probe_start_us) / 1000.0);
  }
  if (hit) {
    if (timed) hit_counter_.Increment();
    return cached;
  }

  // Compute outside the lock: distinct subsets never serialize on each other,
  // and a concurrent duplicate compute returns the identical (deterministic)
  // value, so double computation is a small waste, never a correctness issue.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (timed) miss_counter_.Increment();
  double value = compute();

  // Simulated allocation failure: the cache degrades gracefully by serving
  // the freshly computed value without retaining it — callers never see an
  // error, they just lose the memoization for this subset.
  if (failpoint::AnyArmed() &&
      failpoint::Fire("subset_cache.insert", hash).fired()) {
    return value;
  }

  [[maybe_unused]] int64_t insert_start_us = timed ? telemetry::NowMicros() : 0;
  {
    telemetry::AllocationScope insert_alloc("utility_cache.insert");
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<size_t> owned = (lookup == &subset) ? subset : std::move(key);
    auto [it, inserted] = shard.values.emplace(std::move(owned), value);
    if (inserted) {
      shard.order.push_back(it->first);
      entries_.fetch_add(1, std::memory_order_relaxed);
      while (shard.values.size() > per_shard_capacity_) {
        shard.values.erase(shard.order.front());
        shard.order.pop_front();
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (timed) eviction_counter_.Increment();
      }
      NDE_METRIC_GAUGE_SET("utility_cache.entries",
                           static_cast<double>(
                               entries_.load(std::memory_order_relaxed)));
    }
  }
  if (timed) {
    NDE_METRIC_RECORD(
        "utility_cache.op_ms",
        static_cast<double>(telemetry::NowMicros() - insert_start_us) / 1000.0);
  }
  return value;
}

SubsetCache::Stats SubsetCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace nde
