#ifndef NDE_IMPORTANCE_KNN_SHAPLEY_H_
#define NDE_IMPORTANCE_KNN_SHAPLEY_H_

#include <vector>

#include "importance/estimator_options.h"
#include "importance/utility.h"
#include "ml/dataset.h"

namespace nde {

/// Exact Shapley values for the soft K-NN utility in O(n log n) per
/// validation point (Jia et al., "Efficient task-specific data valuation for
/// nearest neighbor algorithms", 2019) — the workhorse that makes
/// Shapley-based data debugging tractable (Figure 2's
/// `nde.knn_shapley_values`).
///
/// The underlying cooperative game is
///   v(S) = mean over validation points of
///          (1/K) * sum_{j=1}^{min(K,|S|)} 1[label of j-th nearest in S == y]
/// with v(empty) = 0. The returned values satisfy the efficiency axiom:
/// sum_i phi_i == v(full training set).
///
/// Ties in distance are broken by training index, matching
/// `KnnClassifier::Neighbors`.
///
/// Validation points are scored in parallel (fixed 8-point chunks with
/// per-chunk partial sums folded in chunk order), so for any
/// `options.num_threads` the result is bit-identical; the closed form draws
/// no randomness, so `options.seed` is unused.
std::vector<double> KnnShapleyValues(const MlDataset& train,
                                     const MlDataset& validation, size_t k,
                                     const EstimatorOptions& options = {});

/// The same game as an explicit UtilityFunction, used to validate the closed
/// form against exact enumeration in tests and to plug the KNN proxy game
/// into the generic Monte-Carlo estimators.
class SoftKnnUtility : public UtilityFunction {
 public:
  SoftKnnUtility(MlDataset train, MlDataset validation, size_t k);

  double Evaluate(const std::vector<size_t>& subset) const override;
  size_t num_units() const override { return train_.size(); }

 private:
  MlDataset train_;
  MlDataset validation_;
  size_t k_;
  /// distance_order_[v] = training indices sorted by distance to validation
  /// point v (precomputed once).
  std::vector<std::vector<size_t>> distance_order_;
};

}  // namespace nde

#endif  // NDE_IMPORTANCE_KNN_SHAPLEY_H_
