#include "importance/utility.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace nde {

double UtilityFunction::FullUtility() const {
  std::vector<size_t> all(num_units());
  std::iota(all.begin(), all.end(), size_t{0});
  return Evaluate(all);
}

ModelAccuracyUtility::ModelAccuracyUtility(ClassifierFactory factory,
                                           MlDataset train, MlDataset validation)
    : factory_(std::move(factory)),
      train_(std::move(train)),
      validation_(std::move(validation)) {
  NDE_CHECK(factory_ != nullptr);
  num_classes_ = std::max({train_.NumClasses(), validation_.NumClasses(), 2});
}

double ModelAccuracyUtility::Evaluate(const std::vector<size_t>& subset) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (subset.empty()) {
    return 1.0 / static_cast<double>(num_classes_);
  }
  MlDataset coalition = train_.Subset(subset);
  std::unique_ptr<Classifier> model = factory_();
  Status fit = model->FitWithClasses(coalition, num_classes_);
  if (fit.ok()) {
    std::vector<int> predicted = model->Predict(validation_.features);
    return Accuracy(validation_.labels, predicted);
  }
  // Fallback: majority-label predictor of the coalition.
  std::map<int, size_t> counts;
  for (int label : coalition.labels) ++counts[label];
  int majority = 0;
  size_t best = 0;
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      majority = label;
    }
  }
  size_t correct = 0;
  for (int label : validation_.labels) {
    if (label == majority) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(validation_.labels.size());
}

}  // namespace nde
