#include "importance/utility.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "common/failpoint.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace nde {

double UtilityFunction::FullUtility() const {
  std::vector<size_t> all(num_units());
  std::iota(all.begin(), all.end(), size_t{0});
  return Evaluate(all);
}

Result<double> UtilityFunction::TryEvaluate(const std::vector<size_t>& subset,
                                            uint64_t salt) const {
  if (failpoint::AnyArmed()) {
    // Order-insensitive subset hash: XOR of per-element mixes commutes, so
    // the key — and therefore a probabilistic fire decision — depends only on
    // the coalition itself, not on which thread or wave evaluated it.
    uint64_t key = failpoint::MixKey(subset.size(), salt);
    for (size_t unit : subset) key ^= failpoint::MixKey(unit + 1, 0x5eed);
    failpoint::Outcome fp = failpoint::Fire("utility.evaluate", key);
    if (fp.kind == failpoint::Outcome::kNanPoison) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (fp.fired()) return fp.status;
  }
  return Evaluate(subset);
}

ModelAccuracyUtility::ModelAccuracyUtility(ClassifierFactory factory,
                                           MlDataset train,
                                           MlDataset validation,
                                           UtilityFastPathOptions fast_path)
    : factory_(std::move(factory)),
      train_(std::move(train)),
      validation_(std::move(validation)),
      fast_path_(fast_path) {
  NDE_CHECK(factory_ != nullptr);
  num_classes_ = std::max({train_.NumClasses(), validation_.NumClasses(), 2});
  if (fast_path_.subset_cache) {
    cache_ = std::make_unique<SubsetCache>(fast_path_.cache);
  }
}

double ModelAccuracyUtility::Evaluate(const std::vector<size_t>& subset) const {
  // Counted before the cache lookup so evaluation counts (the estimators'
  // cost accounting) are identical with the cache on or off.
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (subset.empty()) {
    return 1.0 / static_cast<double>(num_classes_);
  }
  if (cache_ != nullptr) {
    return cache_->GetOrCompute(subset,
                                [&] { return EvaluateUncached(subset); });
  }
  return EvaluateUncached(subset);
}

double ModelAccuracyUtility::EvaluateUncached(
    const std::vector<size_t>& subset) const {
  // The retrain path is the expensive one, so it carries the phase
  // observability; the prefix-scan fast path stays clock-free.
  telemetry::AllocationScope eval_alloc("utility.evaluate");
  [[maybe_unused]] int64_t start_us =
      telemetry::Enabled() ? telemetry::NowMicros() : 0;
  std::unique_ptr<Classifier> model = factory_();
  MlDatasetView view(train_, subset);
  Status fit = fast_path_.zero_copy_views
                   ? model->FitView(view, num_classes_)
                   : model->FitWithClasses(train_.Subset(subset), num_classes_);
  double result;
  if (fit.ok()) {
    std::vector<int> predicted = model->Predict(validation_.features);
    result = Accuracy(validation_.labels, predicted);
  } else {
    // Fallback: majority-label predictor of the coalition.
    result = MajorityAccuracy(view.CopyLabels());
  }
  NDE_METRIC_RECORD(
      "utility.eval_ms",
      static_cast<double>(telemetry::NowMicros() - start_us) / 1000.0);
  return result;
}

double ModelAccuracyUtility::MajorityAccuracy(
    const std::vector<int>& coalition_labels) const {
  std::map<int, size_t> counts;
  for (int label : coalition_labels) ++counts[label];
  int majority = 0;
  size_t best = 0;
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      majority = label;
    }
  }
  size_t correct = 0;
  for (int label : validation_.labels) {
    if (label == majority) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(validation_.labels.size());
}

/// Exact prefix scan over a model's CoalitionScorer: every Push admits one
/// row and rescores the validation set, bit-identical to a cold retrain by
/// the CoalitionScorer contract. Bypasses the subset cache — the scorer is
/// already cheaper than a cache probe plus the occasional retrain.
class ModelAccuracyUtility::ExactScan : public UtilityFunction::PrefixScan {
 public:
  /// Takes a pooled arena (may be null) that the scorer's buffers were
  /// carved from; it is returned to the owner's pool — bump pointer reset,
  /// chunks retained — when the scan dies, so steady-state permutation scans
  /// reuse warm memory instead of allocating.
  ExactScan(const ModelAccuracyUtility* owner,
            std::unique_ptr<Arena> arena,
            std::unique_ptr<CoalitionScorer> scorer)
      : owner_(owner), arena_(std::move(arena)), scorer_(std::move(scorer)) {}

  ~ExactScan() override {
    scorer_.reset();  // The scorer's buffers live in the arena; it dies first.
    owner_->arena_pool_.Release(std::move(arena_));
  }

  double Push(size_t unit) override {
    owner_->evaluations_.fetch_add(1, std::memory_order_relaxed);
    NDE_METRIC_COUNT("utility.prefix_scan_evals", 1);
    scorer_->Add(unit);
    return Accuracy(owner_->validation_.labels, scorer_->Predict());
  }

 private:
  const ModelAccuracyUtility* owner_;
  std::unique_ptr<Arena> arena_;
  std::unique_ptr<CoalitionScorer> scorer_;
};

/// Approximate warm-started scan: one persistent model re-fitted via
/// FitIncremental as the coalition grows. Only handed out when the caller
/// opted in (EstimatorOptions::warm_start) because values differ from cold
/// retraining; they remain deterministic for any thread count since each
/// permutation owns one scan.
class ModelAccuracyUtility::WarmStartScan
    : public UtilityFunction::PrefixScan {
 public:
  explicit WarmStartScan(const ModelAccuracyUtility* owner)
      : owner_(owner),
        model_(owner->factory_()),
        row_(1, owner->train_.features.cols()) {
    coalition_.features = Matrix(0, owner->train_.features.cols());
    // A scan grows to the full training set; reserving up front keeps the
    // per-Push AppendRows free of reallocation.
    coalition_.features.Reserve(owner->train_.size());
    coalition_.labels.reserve(owner->train_.size());
  }

  double Push(size_t unit) override {
    owner_->evaluations_.fetch_add(1, std::memory_order_relaxed);
    NDE_METRIC_COUNT("utility.warm_start_evals", 1);
    const double* src = owner_->train_.features.RowPtr(unit);
    std::copy(src, src + row_.cols(), row_.RowPtr(0));
    coalition_.features.AppendRows(row_);
    coalition_.labels.push_back(owner_->train_.labels[unit]);
    Status fit = model_->FitIncremental(coalition_, owner_->num_classes_);
    if (!fit.ok()) {
      return owner_->MajorityAccuracy(coalition_.labels);
    }
    return Accuracy(owner_->validation_.labels,
                    model_->Predict(owner_->validation_.features));
  }

 private:
  const ModelAccuracyUtility* owner_;
  std::unique_ptr<Classifier> model_;
  MlDataset coalition_;
  Matrix row_;  ///< Reused 1 x d staging row for AppendRows.
};

std::unique_ptr<UtilityFunction::PrefixScan>
ModelAccuracyUtility::NewPrefixScan(bool allow_warm_start) const {
  if (train_.size() == 0 || validation_.size() == 0) return nullptr;
  std::call_once(scorer_context_once_, [this] {
    std::unique_ptr<Classifier> probe = factory_();
    CoalitionScorerOptions options;
    options.soa_kernels = fast_path_.soa_kernels;
    options.float32 = fast_path_.float32;
    scorer_context_ = probe->NewCoalitionScorerContext(
        train_, validation_.features, num_classes_, options);
  });
  if (scorer_context_ != nullptr) {
    std::unique_ptr<Arena> arena =
        fast_path_.arena ? arena_pool_.Acquire() : nullptr;
    std::unique_ptr<CoalitionScorer> scorer =
        scorer_context_->NewScorer(arena.get());
    return std::make_unique<ExactScan>(this, std::move(arena),
                                       std::move(scorer));
  }
  if (allow_warm_start) {
    return std::make_unique<WarmStartScan>(this);
  }
  return nullptr;
}

}  // namespace nde
