#ifndef NDE_IMPORTANCE_FAIRNESS_DEBUGGING_H_
#define NDE_IMPORTANCE_FAIRNESS_DEBUGGING_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// A conjunctive pattern over categorical training attributes, scored by the
/// effect of removing the matching training subset — Gopher-style
/// "interpretable data-based explanations for fairness debugging" (Pradhan
/// et al., SIGMOD 2022).
struct FairnessPattern {
  /// Conditions column == value rendered as strings, e.g. {"sex=m",
  /// "sector=tech"}.
  std::vector<std::string> conditions;
  size_t support = 0;            ///< matching training rows
  double fairness_delta = 0.0;   ///< baseline violation - violation after
                                 ///< removal; positive = removal improves
  double accuracy_delta = 0.0;   ///< accuracy after removal - baseline

  std::string ToString() const;
};

struct GopherOptions {
  size_t max_conditions = 2;   ///< pattern size cap (1 or 2 supported)
  size_t min_support = 8;      ///< ignore patterns matching fewer rows
  size_t top_k = 10;           ///< patterns returned
  /// Skip attribute columns with more than this many distinct values
  /// (identifiers would otherwise explode the pattern space).
  size_t max_column_cardinality = 12;
};

/// Enumerates conjunctive patterns over the categorical (string / int64)
/// columns of `train_attributes` (row-aligned with `train`), retrains the
/// model without each pattern's rows, and reports the top patterns by
/// equalized-odds improvement on the validation set.
///
/// Exact (retraining-based) removal effects, as in Gopher's ground-truth
/// mode; suitable for the dataset sizes of this library's scenarios.
Result<std::vector<FairnessPattern>> ExplainFairness(
    const ClassifierFactory& factory, const MlDataset& train,
    const Table& train_attributes, const MlDataset& validation,
    const std::vector<int>& validation_groups, const GopherOptions& options = {});

}  // namespace nde

#endif  // NDE_IMPORTANCE_FAIRNESS_DEBUGGING_H_
