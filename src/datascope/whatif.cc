#include "datascope/whatif.h"

#include <utility>

#include "cleaning/imputation.h"
#include "common/string_util.h"
#include "telemetry/telemetry.h"

namespace nde {

std::string WhatIfOutcome::ToString() const {
  return StrFormat(
      "%-28s acc=%.4f (%+.4f) f1=%.4f eq_odds=%.4f rows=%zu", name.c_str(),
      report.accuracy, accuracy_delta, report.f1, report.equalized_odds,
      output_rows);
}

namespace {

Result<WhatIfOutcome> EvaluateVariant(const MlPipeline& pipeline,
                                      const ClassifierFactory& factory,
                                      const MlDataset& validation,
                                      const std::vector<int>& validation_groups,
                                      std::string name) {
  NDE_TRACE_SPAN_VAR(span,
                     telemetry::Enabled() ? "whatif_variant: " + name
                                          : std::string(),
                     "datascope");
  NDE_METRIC_COUNT("datascope.whatif_variants", 1);
  NDE_ASSIGN_OR_RETURN(PipelineOutput output, pipeline.Run());
  if (output.size() == 0) {
    return Status::FailedPrecondition(
        StrFormat("variant '%s' produced no training rows", name.c_str()));
  }
  WhatIfOutcome outcome;
  outcome.name = std::move(name);
  outcome.output_rows = output.size();
  NDE_ASSIGN_OR_RETURN(
      outcome.report,
      TrainAndEvaluate(factory, output.ToDataset(), validation,
                       validation_groups));
  return outcome;
}

}  // namespace

Result<std::vector<WhatIfOutcome>> RunWhatIfAnalysis(
    const MlPipeline& pipeline, const ClassifierFactory& factory,
    const MlDataset& validation,
    const std::vector<WhatIfIntervention>& interventions,
    const std::vector<int>& validation_groups) {
  std::vector<WhatIfOutcome> outcomes;
  NDE_ASSIGN_OR_RETURN(
      WhatIfOutcome baseline,
      EvaluateVariant(pipeline, factory, validation, validation_groups,
                      "(baseline)"));
  double baseline_accuracy = baseline.report.accuracy;
  outcomes.push_back(std::move(baseline));

  for (const WhatIfIntervention& intervention : interventions) {
    if (intervention.source_index >= pipeline.sources().size()) {
      return Status::InvalidArgument(
          StrFormat("intervention '%s' targets source %zu of %zu",
                    intervention.name.c_str(), intervention.source_index,
                    pipeline.sources().size()));
    }
    if (intervention.apply == nullptr) {
      return Status::InvalidArgument(
          StrFormat("intervention '%s' has no apply function",
                    intervention.name.c_str()));
    }
    // Build a variant pipeline with the rewritten source.
    std::vector<NamedTable> sources = pipeline.sources();
    const Table& original = sources[intervention.source_index].table;
    NDE_ASSIGN_OR_RETURN(Table rewritten, intervention.apply(original));
    if (!(rewritten.schema() == original.schema())) {
      return Status::InvalidArgument(
          StrFormat("intervention '%s' changed the source schema",
                    intervention.name.c_str()));
    }
    sources[intervention.source_index].table = std::move(rewritten);
    MlPipeline variant(std::move(sources), pipeline.builder(),
                       pipeline.transformer(), pipeline.label_column());
    NDE_ASSIGN_OR_RETURN(
        WhatIfOutcome outcome,
        EvaluateVariant(variant, factory, validation, validation_groups,
                        intervention.name));
    outcome.accuracy_delta = outcome.report.accuracy - baseline_accuracy;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

SourceIntervention MeanImputeIntervention(const std::string& column) {
  return [column](const Table& table) -> Result<Table> {
    Table copy = table;
    MeanImputer imputer;
    NDE_RETURN_IF_ERROR(ImputeColumn(&copy, column, &imputer).status());
    return copy;
  };
}

SourceIntervention DropNullRowsIntervention(const std::string& column) {
  return [column](const Table& table) -> Result<Table> {
    NDE_ASSIGN_OR_RETURN(size_t col, table.schema().FieldIndex(column));
    return table.FilterRows(
        [&table, col](size_t r) { return !table.At(r, col).is_null(); });
  };
}

SourceIntervention FilterRowsIntervention(
    std::function<bool(const Table&, size_t)> predicate) {
  return [predicate = std::move(predicate)](const Table& table) -> Result<Table> {
    return table.FilterRows(
        [&table, &predicate](size_t r) { return predicate(table, r); });
  };
}

}  // namespace nde
