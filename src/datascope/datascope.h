#ifndef NDE_DATASCOPE_DATASCOPE_H_
#define NDE_DATASCOPE_DATASCOPE_H_

#include <atomic>
#include <vector>

#include "importance/estimator_options.h"
#include "importance/utility.h"
#include "ml/dataset.h"
#include "ml/model.h"
#include "pipeline/pipeline.h"

namespace nde {

/// Datascope-style data debugging over ML pipelines (Karlaš et al., ICLR
/// 2023): importance is computed for *source* tuples — the rows of one
/// registered input table — rather than for the already-preprocessed feature
/// rows, by combining a KNN proxy game over the pipeline output with the
/// fine-grained provenance mapping output rows back to source tuples.

/// Encodes a validation table (same relational schema as the pipeline's
/// processed output) with the pipeline's *fitted* encoders and extracts its
/// labels. The standard way to obtain a validation set living in the same
/// feature space as the pipeline output.
Result<MlDataset> EncodeValidation(const PipelineOutput& output,
                                   const Table& validation_table,
                                   const std::string& label_column);

/// Fast pipeline-aware importance: exact KNN-Shapley values of the encoded
/// output rows, attributed to the rows of source table `target_table_id` by
/// summing each output row's value into every source tuple in its provenance
/// from that table (the additive fork/join attribution of Datascope).
///
/// Returns one value per row of the target source table (rows that reach no
/// output get 0). `num_source_rows` is the target table's row count.
/// `options.num_threads` fans the underlying KnnShapleyValues over validation
/// points; results are bit-identical for any thread count.
Result<std::vector<double>> KnnShapleyOverPipeline(
    const PipelineOutput& output, const MlDataset& validation,
    int32_t target_table_id, size_t num_source_rows, size_t k,
    const EstimatorOptions& options = {});

/// Ground-truth coalition game over source tuples: v(S) re-executes the
/// whole pipeline with only the source rows S of the target table present
/// (encoders refit), trains `factory`'s model, and scores validation
/// accuracy. Plug into TmcShapleyValues / LeaveOneOutValues / etc. for exact
/// or Monte-Carlo source importance. O(pipeline + training) per evaluation —
/// the cost that motivates the KNN fast path above.
class PipelineSourceUtility : public UtilityFunction {
 public:
  /// `pipeline` must outlive this object.
  PipelineSourceUtility(const MlPipeline* pipeline, int32_t target_table_id,
                        ClassifierFactory factory, MlDataset validation);

  double Evaluate(const std::vector<size_t>& subset) const override;
  size_t num_units() const override { return num_units_; }

  size_t num_evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// Attaches a sharded exact-value SubsetCache to Evaluate. Pipeline
  /// re-execution is the most expensive utility in the codebase, so repeated
  /// coalitions (LOO duplicates, waves shared across estimators) skip the
  /// rerun entirely; values and eval counts stay bit-identical.
  void EnableSubsetCache(SubsetCacheOptions options = {});

  /// The attached cache, or nullptr before EnableSubsetCache.
  const SubsetCache* subset_cache() const { return cache_.get(); }

 private:
  double EvaluateUncached(const std::vector<size_t>& subset) const;

  const MlPipeline* pipeline_;
  int32_t target_table_id_;
  ClassifierFactory factory_;
  MlDataset validation_;
  size_t num_units_;
  int num_classes_;
  std::unique_ptr<SubsetCache> cache_;  ///< Internally synchronized.
  /// Atomic: Evaluate runs concurrently under the parallel estimators.
  mutable std::atomic<size_t> evaluations_{0};
};

/// Result of a removal what-if (Figure 3's `nde.remove` +
/// `nde.evaluate_change`).
struct RemovalImpact {
  double baseline_accuracy = 0.0;
  double new_accuracy = 0.0;
  double accuracy_change = 0.0;   ///< new - baseline
  size_t output_rows_removed = 0;
};

/// Measures the validation-accuracy impact of deleting `removed` source rows.
/// `fast_path` uses provenance filtering on the already-computed output
/// (fitted encoders kept); otherwise the pipeline is fully re-executed.
Result<RemovalImpact> EvaluateSourceRemoval(
    const MlPipeline& pipeline, const PipelineOutput& baseline_output,
    const ClassifierFactory& factory, const MlDataset& validation,
    const std::vector<SourceRef>& removed, bool fast_path = true);

}  // namespace nde

#endif  // NDE_DATASCOPE_DATASCOPE_H_
