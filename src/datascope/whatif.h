#ifndef NDE_DATASCOPE_WHATIF_H_
#define NDE_DATASCOPE_WHATIF_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/metrics.h"
#include "pipeline/pipeline.h"

namespace nde {

/// Data-centric what-if analysis over ML pipelines (Grafberger et al.,
/// "Automating and Optimizing Data-Centric What-If Analyses on Native
/// Machine Learning Pipelines", SIGMOD 2023 — reference [23] of the
/// tutorial): instead of asking "which tuple is important?", ask "what
/// happens to my downstream metrics if I apply this cleaning / filtering /
/// repair intervention to a source table?" and evaluate a whole catalog of
/// such interventions in one sweep.

/// Rewrites one source table (impute a column, drop suspicious rows, fix a
/// unit error, ...). Must not change the schema.
using SourceIntervention = std::function<Result<Table>(const Table&)>;

/// A named intervention targeting one registered source of the pipeline.
struct WhatIfIntervention {
  std::string name;
  size_t source_index = 0;  ///< index into MlPipeline::sources()
  SourceIntervention apply;
};

/// Outcome of one what-if variant.
struct WhatIfOutcome {
  std::string name;
  QualityReport report;
  double accuracy_delta = 0.0;  ///< vs the unmodified pipeline
  size_t output_rows = 0;

  std::string ToString() const;
};

/// Evaluates the baseline pipeline plus every intervention variant: for each
/// variant the target source table is rewritten, the pipeline re-executed
/// (encoders refit — interventions may change fit statistics), a model
/// trained and the full quality panel measured on `validation`.
///
/// The first returned entry is always the baseline (name "(baseline)",
/// delta 0). Interventions whose pipeline fails are reported via the status.
Result<std::vector<WhatIfOutcome>> RunWhatIfAnalysis(
    const MlPipeline& pipeline, const ClassifierFactory& factory,
    const MlDataset& validation,
    const std::vector<WhatIfIntervention>& interventions,
    const std::vector<int>& validation_groups = {});

/// Canned interventions for the catalog.

/// Imputes `column` with the observed mean (numeric columns).
SourceIntervention MeanImputeIntervention(const std::string& column);

/// Drops rows where `column` is null.
SourceIntervention DropNullRowsIntervention(const std::string& column);

/// Drops rows failing `predicate` (row index into the source table).
SourceIntervention FilterRowsIntervention(
    std::function<bool(const Table&, size_t)> predicate);

}  // namespace nde

#endif  // NDE_DATASCOPE_WHATIF_H_
