#include "datascope/datascope.h"

#include <algorithm>
#include <map>

#include "common/log.h"
#include "common/string_util.h"
#include "importance/knn_shapley.h"
#include "ml/metrics.h"
#include "telemetry/telemetry.h"

namespace nde {

Result<MlDataset> EncodeValidation(const PipelineOutput& output,
                                   const Table& validation_table,
                                   const std::string& label_column) {
  if (!output.encoders.fitted()) {
    return Status::FailedPrecondition("pipeline output has unfitted encoders");
  }
  MlDataset validation;
  NDE_ASSIGN_OR_RETURN(validation.features,
                       output.encoders.Transform(validation_table));
  NDE_ASSIGN_OR_RETURN(size_t label_col,
                       validation_table.schema().FieldIndex(label_column));
  validation.labels.reserve(validation_table.num_rows());
  for (size_t r = 0; r < validation_table.num_rows(); ++r) {
    const Value& v = validation_table.At(r, label_col);
    if (v.is_null() || !v.is_int64() || v.as_int64() < 0) {
      return Status::InvalidArgument(
          StrFormat("validation row %zu has an invalid label", r));
    }
    validation.labels.push_back(static_cast<int>(v.as_int64()));
  }
  return validation;
}

Result<std::vector<double>> KnnShapleyOverPipeline(
    const PipelineOutput& output, const MlDataset& validation,
    int32_t target_table_id, size_t num_source_rows, size_t k,
    const EstimatorOptions& options) {
  if (output.size() == 0) {
    return Status::InvalidArgument("pipeline output is empty");
  }
  if (validation.size() == 0) {
    return Status::InvalidArgument("validation set is empty");
  }
  NDE_TRACE_SPAN_VAR(span, "KnnShapleyOverPipeline", "datascope");
  NDE_SPAN_ARG(span, "output_rows", static_cast<int64_t>(output.size()));
  NDE_METRIC_COUNT("datascope.knn_shapley_runs", 1);
  NDE_LOG(INFO) << "knn_shapley over pipeline: " << output.size()
                << " output rows, " << validation.size()
                << " validation points, k=" << k;
  MlDataset train = output.ToDataset();
  std::vector<double> output_values =
      KnnShapleyValues(train, validation, k, options);

  std::vector<double> source_values(num_source_rows, 0.0);
  for (size_t r = 0; r < output.size(); ++r) {
    for (const SourceRef& ref : output.provenance[r].refs()) {
      if (ref.table_id != target_table_id) continue;
      if (ref.row_id >= num_source_rows) {
        return Status::InvalidArgument(
            StrFormat("provenance row %u exceeds source table size %zu",
                      ref.row_id, num_source_rows));
      }
      source_values[ref.row_id] += output_values[r];
    }
  }
  return source_values;
}

PipelineSourceUtility::PipelineSourceUtility(const MlPipeline* pipeline,
                                             int32_t target_table_id,
                                             ClassifierFactory factory,
                                             MlDataset validation)
    : pipeline_(pipeline),
      target_table_id_(target_table_id),
      factory_(std::move(factory)),
      validation_(std::move(validation)) {
  NDE_CHECK(pipeline_ != nullptr);
  NDE_CHECK(factory_ != nullptr);
  NDE_CHECK_GE(target_table_id, 0);
  NDE_CHECK_LT(static_cast<size_t>(target_table_id),
               pipeline_->sources().size());
  num_units_ =
      pipeline_->sources()[static_cast<size_t>(target_table_id)].table.num_rows();
  num_classes_ = std::max(validation_.NumClasses(), 2);
}

void PipelineSourceUtility::EnableSubsetCache(SubsetCacheOptions options) {
  cache_ = std::make_unique<SubsetCache>(options);
}

double PipelineSourceUtility::Evaluate(const std::vector<size_t>& subset) const {
  // Counted before the cache lookup so eval counts match with the cache off.
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  NDE_METRIC_COUNT("datascope.pipeline_utility_evaluations", 1);
  if (cache_ != nullptr) {
    return cache_->GetOrCompute(subset,
                                [&] { return EvaluateUncached(subset); });
  }
  return EvaluateUncached(subset);
}

double PipelineSourceUtility::EvaluateUncached(
    const std::vector<size_t>& subset) const {
  // Remove the complement of the coalition from the target table.
  std::vector<bool> keep(num_units_, false);
  for (size_t i : subset) {
    NDE_CHECK_LT(i, num_units_);
    keep[i] = true;
  }
  std::vector<SourceRef> removed;
  removed.reserve(num_units_ - subset.size());
  for (size_t i = 0; i < num_units_; ++i) {
    if (!keep[i]) {
      removed.push_back(
          SourceRef{target_table_id_, static_cast<uint32_t>(i)});
    }
  }
  Result<PipelineOutput> output = pipeline_->RunWithout(removed);
  if (!output.ok() || output->size() == 0) {
    // No trainable output: random-guess utility. Estimators probe thousands
    // of coalitions, so this is expected for small ones — log a sample, not
    // a flood.
    NDE_LOG_EVERY_N(DEBUG, 256)
        << "coalition of " << subset.size()
        << " units produced no trainable output; using random-guess utility";
    return 1.0 / static_cast<double>(num_classes_);
  }
  std::unique_ptr<Classifier> model = factory_();
  Status fit = model->FitWithClasses(output->ToDataset(), num_classes_);
  if (!fit.ok()) {
    NDE_LOG_FIRST_N(WARNING, 4)
        << "classifier fit failed for a coalition of " << subset.size()
        << " units (" << fit.message() << "); using random-guess utility";
    return 1.0 / static_cast<double>(num_classes_);
  }
  std::vector<int> predicted = model->Predict(validation_.features);
  return Accuracy(validation_.labels, predicted);
}

Result<RemovalImpact> EvaluateSourceRemoval(
    const MlPipeline& pipeline, const PipelineOutput& baseline_output,
    const ClassifierFactory& factory, const MlDataset& validation,
    const std::vector<SourceRef>& removed, bool fast_path) {
  if (baseline_output.size() == 0) {
    return Status::InvalidArgument("baseline pipeline output is empty");
  }
  int num_classes = std::max(validation.NumClasses(), 2);

  auto score = [&](const MlDataset& train) -> Result<double> {
    std::unique_ptr<Classifier> model = factory();
    NDE_RETURN_IF_ERROR(model->FitWithClasses(train, num_classes));
    std::vector<int> predicted = model->Predict(validation.features);
    return Accuracy(validation.labels, predicted);
  };

  RemovalImpact impact;
  NDE_ASSIGN_OR_RETURN(impact.baseline_accuracy,
                       score(baseline_output.ToDataset()));

  // The fast path reuses the already-computed output via provenance; the
  // hit/miss counters expose how often what-ifs avoid a full re-execution.
  PipelineOutput reduced;
  if (fast_path) {
    NDE_METRIC_COUNT("datascope.whatif_fastpath_hits", 1);
    reduced = MlPipeline::RemoveByProvenance(baseline_output, removed);
  } else {
    NDE_METRIC_COUNT("datascope.whatif_full_reruns", 1);
    NDE_ASSIGN_OR_RETURN(reduced, pipeline.RunWithout(removed));
  }
  if (reduced.size() == 0) {
    return Status::InvalidArgument("removal left no training rows");
  }
  impact.output_rows_removed = baseline_output.size() - reduced.size();
  NDE_ASSIGN_OR_RETURN(impact.new_accuracy, score(reduced.ToDataset()));
  impact.accuracy_change = impact.new_accuracy - impact.baseline_accuracy;
  return impact;
}

}  // namespace nde
