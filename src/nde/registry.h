#ifndef NDE_NDE_REGISTRY_H_
#define NDE_NDE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/progress.h"
#include "common/result.h"
#include "common/status.h"
#include "importance/game_values.h"
#include "ml/dataset.h"
#include "pipeline/pipeline.h"

namespace nde {

/// The algorithm registry: one uniform, string-configurable surface over
/// every importance estimator in the library (LOO, TMC-Shapley, Banzhaf,
/// Beta-Shapley, KNN-Shapley, Datascope pipeline importance, influence
/// functions, AUM, self-confidence).
///
/// Why: the CLI, the HTTP job API (src/nde/job_api.h), and tests all need to
/// pick an estimator by name and set its knobs from strings. Before the
/// registry each caller hand-rolled its own if/else dispatch and its own flag
/// parsing; now `AlgorithmRegistry::Global().Create("tmc_shapley")` yields an
/// instance whose options are declared once — name, type, default, doc — and
/// set with `Configure("num_permutations", "64")`, with type mismatches and
/// unknown names reported as Status instead of silently ignored.
///
/// Determinism contract: Configure only fills the same option structs the
/// typed APIs take, so a registry-driven run is bit-identical to calling the
/// estimator directly with equal options (pinned by registry_test and
/// determinism_test).

/// Wire types an option value can take. Everything is set from a string;
/// the type governs how that string is parsed and validated.
enum class OptionType {
  kBool,    ///< "true"/"false"/"1"/"0"
  kInt,     ///< non-negative integer ("42")
  kDouble,  ///< finite decimal ("0.5", "1e-3")
  kString,  ///< taken verbatim
};

/// "bool" / "int" / "double" / "string".
const char* OptionTypeName(OptionType type);

/// One declared option: its name, wire type, default (already formatted as
/// the string Configure would accept), and one-line doc.
struct OptionSpec {
  std::string name;
  OptionType type = OptionType::kString;
  std::string default_value;
  std::string doc;
};

/// The data an algorithm runs over. `train` is always set; `validation` is
/// set for every algorithm that scores against a held-out set (all but aum).
/// The pipeline fields are set when the run came through an MlPipeline (the
/// engine fills them); only `datascope` requires them.
struct RunInput {
  const MlDataset* train = nullptr;
  const MlDataset* validation = nullptr;
  /// Pipeline context for source-tuple attribution (datascope).
  const PipelineOutput* pipeline_output = nullptr;
  int32_t source_table_id = 0;
  size_t num_source_rows = 0;
};

/// A configured instance of one algorithm. Instances are cheap, single-use
/// state machines: Create -> Configure*(string) -> Run. Not thread-safe;
/// each job/CLI invocation creates its own.
class AlgorithmInstance {
 public:
  virtual ~AlgorithmInstance() = default;

  const std::string& name() const { return name_; }
  const std::string& summary() const { return summary_; }

  /// The declared options, in registration order.
  std::vector<OptionSpec> OptionSpecs() const;

  bool HasOption(const std::string& option) const;

  /// Parses `value` per the option's declared type and stores it.
  /// Unknown option -> NotFound; unparsable/out-of-range value ->
  /// InvalidArgument. Either way the instance is unchanged on error.
  Status Configure(const std::string& option, const std::string& value);

  /// Applies every entry of `options` via Configure; stops at the first
  /// error.
  Status ConfigureAll(const std::map<std::string, std::string>& options);

  /// The current value of an option, formatted as the string Configure would
  /// accept (doubles use the shortest round-tripping spelling).
  Result<std::string> GetOption(const std::string& option) const;

  /// Cooperative cancellation: the flag is polled at wave boundaries by the
  /// Monte-Carlo estimators and before the run starts by every algorithm.
  /// Must outlive Run. See EstimatorOptions::cancel.
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Observational progress hook, forwarded to estimators that report
  /// progress (see common/progress.h).
  void SetProgress(ProgressCallback progress) {
    progress_ = std::move(progress);
  }

  /// Runs the algorithm. Plain-score methods (knn_shapley, influence, aum,
  /// self_confidence, datascope) return an estimate with empty std_errors
  /// and utility_evaluations of 0 (or the LOO count when tracked).
  virtual Result<ImportanceEstimate> Run(const RunInput& input) const = 0;

  /// True when Run's values index rows of the *source table* (datascope's
  /// provenance-attributed scores) rather than rows of the training split.
  virtual bool values_are_source_rows() const { return false; }

 protected:
  AlgorithmInstance(std::string name, std::string summary)
      : name_(std::move(name)), summary_(std::move(summary)) {}

  /// Declares one option with a custom parser. The parser returns
  /// InvalidArgument (message only; Configure prefixes context) on bad
  /// input, and must not mutate state when failing.
  using OptionParser = std::function<Status(const std::string& value)>;
  using OptionGetter = std::function<std::string()>;
  void BindOption(const std::string& name, OptionType type,
                  const std::string& doc, OptionParser parser,
                  OptionGetter getter);

  /// Typed binders over BindOption; defaults are read from *target at bind
  /// time, so bind after the struct holds its defaults.
  void BindBool(const std::string& name, const std::string& doc, bool* target);
  void BindSize(const std::string& name, const std::string& doc,
                size_t* target, size_t min_value = 0);
  void BindUint64(const std::string& name, const std::string& doc,
                  uint64_t* target);
  void BindUint32(const std::string& name, const std::string& doc,
                  uint32_t* target);
  void BindDouble(const std::string& name, const std::string& doc,
                  double* target, double min_value, bool exclusive_min);

  /// Binds the knobs shared by every estimator (seed, num_threads,
  /// convergence_tolerance, use_prefix_scan, warm_start, max_retries,
  /// retry_backoff_ms) against an embedded EstimatorOptions.
  void BindEstimatorOptions(EstimatorOptions* options);

  /// Copies the runtime-only fields (cancel flag, progress callback) into
  /// the options struct an estimator is about to receive. Call at the top
  /// of Run.
  void ApplyRuntime(EstimatorOptions* options) const {
    options->cancel = cancel_;
    options->progress = progress_;
  }

  bool cancel_requested() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  const std::atomic<bool>* cancel_flag() const { return cancel_; }
  const ProgressCallback& progress() const { return progress_; }

 private:
  struct Binding {
    OptionSpec spec;
    OptionParser parser;
    OptionGetter getter;
  };

  std::string name_;
  std::string summary_;
  std::vector<Binding> bindings_;  ///< registration order
  const std::atomic<bool>* cancel_ = nullptr;
  ProgressCallback progress_;
};

/// Builds a fresh unconfigured instance of one algorithm.
using AlgorithmFactory = std::function<std::unique_ptr<AlgorithmInstance>()>;

/// Name -> factory map. `Global()` comes pre-registered with every built-in
/// algorithm; tests may Register extras (e.g. a blocking fake).
class AlgorithmRegistry {
 public:
  /// The process-wide registry with all built-ins registered.
  static AlgorithmRegistry& Global();

  /// Registers `factory` under the name its instances report.
  /// AlreadyExists when the name is taken.
  Status Register(AlgorithmFactory factory);

  /// A fresh instance, or NotFound listing the available names.
  Result<std::unique_ptr<AlgorithmInstance>> Create(
      const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Machine-readable catalog:
  /// {"algorithms":[{"name","summary","values","options":[
  ///   {"name","type","default","doc"}]}]} — served on GET /algorithmz.
  std::string DescribeJson() const;

  /// Human-readable catalog for `nde_cli --list-algorithms`.
  std::string DescribeText() const;

 private:
  std::map<std::string, AlgorithmFactory> factories_;
};

}  // namespace nde

#endif  // NDE_NDE_REGISTRY_H_
