#ifndef NDE_NDE_ENGINE_H_
#define NDE_NDE_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "importance/game_values.h"
#include "nde/registry.h"

namespace nde {

/// The shared single-table importance run: CSV table -> MlPipeline (filter
/// null labels -> project -> auto-encode, under a PlanProfiler) -> internal
/// train/validation split -> configured algorithm -> cleaning ranking. Both
/// `nde_cli importance <table.csv>` and the HTTP job API call exactly this,
/// which is what makes their results bit-identical (determinism_test pins
/// it).

/// Everything a caller may want out of one run.
struct TableRunResult {
  ImportanceEstimate estimate;
  /// Source-table row ids ranked most suspect first (ascending value,
  /// ties by index), provenance-mapped for train-split algorithms and taken
  /// directly for source-row algorithms (datascope).
  std::vector<uint32_t> ranked_rows;
  /// The per-operator-annotated plan (PlanProfiler::AnnotatedPlan).
  std::string annotated_plan;
  size_t train_rows = 0;
  size_t valid_rows = 0;
};

/// Runs `algorithm` (already configured) over `table` with labels in column
/// `label`. Split: every 5th pipeline-output row validates, the rest train.
///
/// `annotated_plan` (optional) is filled as soon as the pipeline has
/// executed — before the estimator runs — so callers can surface the plan
/// even when the estimator subsequently fails (the CLI prints it either
/// way). On success the same text is also in TableRunResult.
///
/// An estimate with aborted_early set is returned as a success; the caller
/// decides how to surface the partial result (the CLI warns and exits 3, the
/// job API marks the job failed/cancelled).
Result<TableRunResult> RunAlgorithmOnTable(
    const AlgorithmInstance& algorithm, const Table& table,
    const std::string& label, std::string* annotated_plan = nullptr);

}  // namespace nde

#endif  // NDE_NDE_ENGINE_H_
