#ifndef NDE_NDE_H_
#define NDE_NDE_H_

/// Umbrella header for the `nde` library — Navigating Data Errors in Machine
/// Learning Pipelines: Identify, Debug, and Learn (SIGMOD 2025 tutorial
/// reproduction).
///
/// The library is organized around the tutorial's three pillars:
///
///  1. IDENTIFY — data importance for error detection
///     (importance/: LOO, TMC-Shapley, Banzhaf, Beta-Shapley, exact
///      KNN-Shapley, influence functions, AUM, self-confidence, Gopher-style
///      fairness debugging).
///  2. DEBUG — end-to-end pipelines with fine-grained provenance
///     (pipeline/: relational plan, encoders, provenance, mlinspect-style
///      screens; datascope/: source-tuple importance, what-if removals).
///  3. LEARN — guarantees under uncertain and incomplete data
///     (uncertain/: Zorro interval training, certain KNN predictions,
///      dataset-multiplicity ranges, certain-model checks, fairness ranges
///      under selection bias).
///
/// Plus the substrates everything rests on: data/ (tables, CSV), linalg/,
/// ml/ (models and metrics), datagen/ (the hiring scenario and error
/// injectors), and cleaning/ (prioritized cleaning and the debugging
/// challenge) — and the cross-cutting observability layer: common/log.h
/// (structured leveled logging), common/progress.h (estimator progress
/// callbacks), and telemetry/ (metrics registry, scoped trace spans with
/// Chrome trace_event export, per-operator pipeline profiling, JSON run
/// reports, and an embedded HTTP scrape endpoint; see
/// src/telemetry/README.md).

#include "cleaning/challenge.h"
#include "cleaning/cleaner.h"
#include "cleaning/imputation.h"
#include "cleaning/strategies.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/progress.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "data/csv.h"
#include "data/table.h"
#include "data/value.h"
#include "datagen/synthetic.h"
#include "datascope/datascope.h"
#include "datascope/whatif.h"
#include "importance/estimator_options.h"
#include "importance/fairness_debugging.h"
#include "importance/game_values.h"
#include "importance/grouped.h"
#include "importance/influence.h"
#include "importance/knn_shapley.h"
#include "importance/label_scores.h"
#include "importance/utility.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "ml/unlearning.h"
#include "nde/engine.h"
#include "nde/job_api.h"
#include "nde/registry.h"
#include "pipeline/encoders.h"
#include "pipeline/inspection.h"
#include "pipeline/pipeline.h"
#include "pipeline/plan.h"
#include "pipeline/provenance.h"
#include "query/calibration.h"
#include "query/predictive_query.h"
#include "telemetry/health.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/run_report.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "uncertain/affine.h"
#include "uncertain/certain_knn.h"
#include "uncertain/certain_model.h"
#include "uncertain/fairness_range.h"
#include "uncertain/interval.h"
#include "uncertain/multiplicity.h"
#include "uncertain/poisoning.h"
#include "uncertain/zonotope_trainer.h"
#include "uncertain/zorro.h"

#endif  // NDE_NDE_H_
