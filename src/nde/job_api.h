#ifndef NDE_NDE_JOB_API_H_
#define NDE_NDE_JOB_API_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "common/trace_context.h"
#include "importance/game_values.h"
#include "telemetry/http_exporter.h"

namespace nde {

/// Async importance jobs over HTTP — the serving layer on top of the
/// algorithm registry (src/nde/registry.h) and the shared table engine
/// (src/nde/engine.h), mounted on the embedded HttpExporter:
///
///   POST   /jobs       {"algorithm","label","csv"|"csv_path","options":{}}
///                      -> 202 {"id","state":"queued"}; 400 on a bad
///                      request; 429 when the queue is full (backpressure,
///                      never unbounded memory)
///   GET    /jobs       -> {"jobs":[{summary}...]}
///   GET    /jobs/<id>  -> full snapshot: state, progress, and on success
///                      the estimate (values, std_errors, ranked rows)
///   DELETE /jobs/<id>  -> cooperative cancellation (completed waves are
///                      kept; see EstimatorOptions::cancel)
///   GET    /jobs/<id>/tracez -> the job's span tree, filtered from the
///                      global trace buffer by the job's trace id;
///                      ?folded=1 downloads flamegraph-compatible folded
///                      stacks instead
///   GET    /jobs/<id>/eventz -> per-wave event timeline (wave index,
///                      evals, max_std_error, duration)
///   GET    /algorithmz -> AlgorithmRegistry::DescribeJson()
///
/// Jobs run on a private fixed-size ThreadPool. Each job writes a RunReport
/// artifact (config, convergence curve, error) under `artifact_dir` when one
/// is configured. A failed job flips /healthz to degraded exactly like a
/// failed CLI run; a later successful job restores it.
///
/// Trace attribution: Submit adopts the submitting thread's TraceContext
/// (the one HttpExporter::Dispatch installed from the request's traceparent)
/// — or mints one when there is none — and stamps it with the job's id and
/// algorithm. The job's whole execution runs under that context, so its
/// spans, structured logs, and labeled metrics all carry the same trace id,
/// which is also recorded in the RunReport artifact ("trace_id" config) and
/// the job snapshot. An externally supplied traceparent therefore round-trips
/// verbatim from HTTP ingress to every signal the job emits.

struct JobApiOptions {
  /// Worker threads executing jobs (each job may itself fan out utility
  /// evaluations per its num_threads option).
  size_t num_workers = 1;
  /// Jobs allowed to wait beyond the ones running; a submit past this bound
  /// is refused with ResourceExhausted (HTTP 429).
  size_t max_queued = 8;
  /// Directory for per-job RunReport JSON artifacts ("" disables them).
  std::string artifact_dir;
};

/// One submission, as parsed from POST /jobs or built directly in tests.
struct JobRequest {
  std::string algorithm;  ///< registry name, e.g. "tmc_shapley"
  std::string label;      ///< label column of the CSV
  std::string csv_path;   ///< server-side CSV file to load...
  std::string csv_data;   ///< ...or inline CSV text (exactly one of the two)
  std::map<std::string, std::string> options;  ///< registry Configure pairs
};

enum class JobState { kQueued, kRunning, kDone, kError, kCancelled };

/// "queued" / "running" / "done" / "error" / "cancelled".
const char* JobStateName(JobState state);

/// One estimator wave as observed by the job's progress callback: the basis
/// of GET /jobs/<id>/eventz and of the `<id>.events.json` artifact.
struct JobWaveEvent {
  size_t wave = 0;     ///< 1-based wave index
  int64_t ts_us = 0;   ///< wave boundary, trace-epoch microseconds
  int64_t dur_us = 0;  ///< time since the previous boundary (or job start)
  std::string phase;   ///< reporting estimator phase, e.g. "tmc_shapley"
  size_t completed = 0;
  size_t total = 0;
  size_t utility_evaluations = 0;
  double max_std_error = 0.0;
};

/// Point-in-time copy of one job, safe to read after the job advanced.
struct JobSnapshot {
  std::string id;
  std::string algorithm;
  JobState state = JobState::kQueued;
  size_t progress_completed = 0;
  size_t progress_total = 0;
  /// Set when state == kDone (and for a cancelled job that completed waves
  /// before the cancel landed, values stay empty — partial results are not
  /// exposed, matching the CLI's exit-3 contract).
  ImportanceEstimate estimate;
  std::vector<uint32_t> ranked_rows;
  size_t train_rows = 0;
  size_t valid_rows = 0;
  Status error;               ///< non-OK when state is kError/kCancelled
  std::string artifact_path;  ///< RunReport artifact ("" when disabled)
  /// The job's trace attribution (id fields set at submit time) and the
  /// wave-boundary timeline recorded so far.
  TraceContext trace;
  std::vector<JobWaveEvent> events;
};

class JobManager {
 public:
  explicit JobManager(JobApiOptions options = {});

  /// Cancels every queued/running job, then drains the pool.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates the request (algorithm exists, options parse, exactly one CSV
  /// source) and enqueues it. InvalidArgument/NotFound for a bad request;
  /// ResourceExhausted when max_queued jobs are already waiting.
  Result<std::string> Submit(const JobRequest& request);

  /// NotFound for an unknown id.
  Result<JobSnapshot> Get(const std::string& id) const;

  /// Summaries of every job, oldest first.
  std::vector<JobSnapshot> List() const;

  /// Raises the job's cancel flag. Queued jobs finish as kCancelled without
  /// running; a running job stops at its next wave boundary. Cancelling a
  /// finished job is a no-op. NotFound for an unknown id.
  Status Cancel(const std::string& id);

  /// The HTTP face: handles /jobs, /jobs/<id>, /jobs/<id>/tracez,
  /// /jobs/<id>/eventz, and /algorithmz requests and returns complete
  /// response bytes. Install via
  /// `exporter.SetHandler([&](const auto& r) { return m.HandleHttp(r); })`.
  std::string HandleHttp(const telemetry::HttpRequest& request);

  const JobApiOptions& options() const { return options_; }

 private:
  struct Job;

  void Execute(const std::shared_ptr<Job>& job);
  Status RunJob(Job* job);

  JobApiOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::string> order_;  ///< submission order for List()
  size_t next_id_ = 1;
  size_t pending_ = 0;  ///< submitted but not yet started
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nde

#endif  // NDE_NDE_JOB_API_H_
