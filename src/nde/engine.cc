#include "nde/engine.h"

#include <utility>

#include "cleaning/strategies.h"
#include "pipeline/encoders.h"
#include "pipeline/pipeline.h"
#include "pipeline/plan.h"

namespace nde {

Result<TableRunResult> RunAlgorithmOnTable(const AlgorithmInstance& algorithm,
                                           const Table& table,
                                           const std::string& label,
                                           std::string* annotated_plan) {
  NDE_RETURN_IF_ERROR(table.schema().FieldIndex(label).status());
  NDE_ASSIGN_OR_RETURN(ColumnTransformer transformer,
                       MakeAutoTransformer(table, {label}));

  std::vector<std::string> columns;
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    columns.push_back(table.schema().field(c).name);
  }
  PlanBuilder builder = [label, columns](
                            const std::vector<PlanNodePtr>& sources) {
    PlanNodePtr node = MakeFilter(
        sources[0], label + " is not null", [label](const RowView& row) {
          Result<Value> cell = row.Get(label);
          return cell.ok() && !cell.value().is_null();
        });
    return MakeProject(std::move(node), columns);
  };
  MlPipeline pipeline({{"train", table}}, builder, std::move(transformer),
                      label);

  PlanNodePtr plan = pipeline.BuildPlan();
  PlanProfiler profiler;
  NDE_ASSIGN_OR_RETURN(PipelineOutput output, pipeline.Execute(plan));

  TableRunResult result;
  result.annotated_plan = profiler.AnnotatedPlan(*plan);
  // Surface the plan before the (possibly failing) estimator runs.
  if (annotated_plan != nullptr) *annotated_plan = result.annotated_plan;

  // Internal split: every 5th output row validates, the rest train.
  MlDataset all = output.ToDataset();
  std::vector<size_t> train_rows, valid_rows;
  for (size_t r = 0; r < all.size(); ++r) {
    (r % 5 == 4 ? valid_rows : train_rows).push_back(r);
  }
  if (train_rows.empty() || valid_rows.empty()) {
    return Status::InvalidArgument("not enough rows for an importance split");
  }
  MlDataset train = all.Subset(train_rows);
  MlDataset valid = all.Subset(valid_rows);
  result.train_rows = train_rows.size();
  result.valid_rows = valid_rows.size();

  RunInput input;
  input.train = &train;
  input.validation = &valid;
  input.pipeline_output = &output;
  input.source_table_id = 0;
  input.num_source_rows = table.num_rows();
  NDE_ASSIGN_OR_RETURN(result.estimate, algorithm.Run(input));

  // Most suspect first = lowest value. Train-split algorithms score the
  // training rows, so map each back to its source row through provenance;
  // source-row algorithms (datascope) already index the source table.
  std::vector<size_t> ranking = AscendingOrder(result.estimate.values);
  result.ranked_rows.reserve(ranking.size());
  for (size_t index : ranking) {
    if (algorithm.values_are_source_rows()) {
      result.ranked_rows.push_back(static_cast<uint32_t>(index));
      continue;
    }
    size_t output_row = train_rows[index];
    const std::vector<SourceRef>& refs = output.provenance[output_row].refs();
    result.ranked_rows.push_back(
        refs.empty() ? static_cast<uint32_t>(output_row) : refs[0].row_id);
  }
  return result;
}

}  // namespace nde
