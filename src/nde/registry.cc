#include "nde/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "datascope/datascope.h"
#include "importance/influence.h"
#include "importance/knn_shapley.h"
#include "importance/label_scores.h"
#include "importance/utility.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "telemetry/trace.h"

namespace nde {

const char* OptionTypeName(OptionType type) {
  switch (type) {
    case OptionType::kBool:
      return "bool";
    case OptionType::kInt:
      return "int";
    case OptionType::kDouble:
      return "double";
    case OptionType::kString:
      return "string";
  }
  return "unknown";
}

namespace {

/// Shortest decimal spelling that strtod parses back to exactly `value`, so
/// GetOption/Describe round-trip through Configure bit-identically.
std::string FormatDouble(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::string text = StrFormat("%.*g", precision, value);
    if (std::strtod(text.c_str(), nullptr) == value) return text;
  }
  return StrFormat("%.17g", value);
}

Result<bool> ParseBool(const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return Status::InvalidArgument("expects true|false|1|0, got '" + value +
                                 "'");
}

Result<uint64_t> ParseUnsigned(const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("expects a non-negative integer, got '" +
                                   value + "'");
  }
  errno = 0;
  unsigned long long parsed = std::strtoull(value.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("integer out of range: '" + value + "'");
  }
  return static_cast<uint64_t>(parsed);
}

Result<double> ParseDouble(const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("expects a number, got ''");
  }
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    return Status::InvalidArgument("expects a number, got '" + value + "'");
  }
  if (!std::isfinite(parsed)) {
    return Status::InvalidArgument("expects a finite number, got '" + value +
                                   "'");
  }
  return parsed;
}

}  // namespace

std::vector<OptionSpec> AlgorithmInstance::OptionSpecs() const {
  std::vector<OptionSpec> specs;
  specs.reserve(bindings_.size());
  for (const Binding& binding : bindings_) specs.push_back(binding.spec);
  return specs;
}

bool AlgorithmInstance::HasOption(const std::string& option) const {
  for (const Binding& binding : bindings_) {
    if (binding.spec.name == option) return true;
  }
  return false;
}

Status AlgorithmInstance::Configure(const std::string& option,
                                    const std::string& value) {
  for (const Binding& binding : bindings_) {
    if (binding.spec.name != option) continue;
    Status parsed = binding.parser(value);
    if (!parsed.ok()) {
      return Status(parsed.code(),
                    StrFormat("option '%s' of algorithm '%s': %s",
                              option.c_str(), name_.c_str(),
                              parsed.message().c_str()));
    }
    return Status::OK();
  }
  return Status::NotFound(StrFormat("algorithm '%s' has no option '%s'",
                                    name_.c_str(), option.c_str()));
}

Status AlgorithmInstance::ConfigureAll(
    const std::map<std::string, std::string>& options) {
  for (const auto& [option, value] : options) {
    NDE_RETURN_IF_ERROR(Configure(option, value));
  }
  return Status::OK();
}

Result<std::string> AlgorithmInstance::GetOption(
    const std::string& option) const {
  for (const Binding& binding : bindings_) {
    if (binding.spec.name == option) return binding.getter();
  }
  return Status::NotFound(StrFormat("algorithm '%s' has no option '%s'",
                                    name_.c_str(), option.c_str()));
}

void AlgorithmInstance::BindOption(const std::string& name, OptionType type,
                                   const std::string& doc,
                                   OptionParser parser, OptionGetter getter) {
  Binding binding;
  binding.spec.name = name;
  binding.spec.type = type;
  binding.spec.doc = doc;
  binding.spec.default_value = getter();
  binding.parser = std::move(parser);
  binding.getter = std::move(getter);
  bindings_.push_back(std::move(binding));
}

void AlgorithmInstance::BindBool(const std::string& name,
                                 const std::string& doc, bool* target) {
  BindOption(
      name, OptionType::kBool, doc,
      [target](const std::string& value) -> Status {
        NDE_ASSIGN_OR_RETURN(*target, ParseBool(value));
        return Status::OK();
      },
      [target]() -> std::string { return *target ? "true" : "false"; });
}

void AlgorithmInstance::BindSize(const std::string& name,
                                 const std::string& doc, size_t* target,
                                 size_t min_value) {
  BindOption(
      name, OptionType::kInt, doc,
      [target, min_value](const std::string& value) -> Status {
        NDE_ASSIGN_OR_RETURN(uint64_t parsed, ParseUnsigned(value));
        if (parsed < min_value) {
          return Status::InvalidArgument(
              StrFormat("must be at least %zu, got '%s'", min_value,
                        value.c_str()));
        }
        *target = static_cast<size_t>(parsed);
        return Status::OK();
      },
      [target]() -> std::string { return StrFormat("%zu", *target); });
}

void AlgorithmInstance::BindUint64(const std::string& name,
                                   const std::string& doc, uint64_t* target) {
  BindOption(
      name, OptionType::kInt, doc,
      [target](const std::string& value) -> Status {
        NDE_ASSIGN_OR_RETURN(*target, ParseUnsigned(value));
        return Status::OK();
      },
      [target]() -> std::string {
        return StrFormat("%llu", static_cast<unsigned long long>(*target));
      });
}

void AlgorithmInstance::BindUint32(const std::string& name,
                                   const std::string& doc, uint32_t* target) {
  BindOption(
      name, OptionType::kInt, doc,
      [target](const std::string& value) -> Status {
        NDE_ASSIGN_OR_RETURN(uint64_t parsed, ParseUnsigned(value));
        if (parsed > 0xffffffffULL) {
          return Status::InvalidArgument("integer out of range: '" + value +
                                         "'");
        }
        *target = static_cast<uint32_t>(parsed);
        return Status::OK();
      },
      [target]() -> std::string { return StrFormat("%u", *target); });
}

void AlgorithmInstance::BindDouble(const std::string& name,
                                   const std::string& doc, double* target,
                                   double min_value, bool exclusive_min) {
  BindOption(
      name, OptionType::kDouble, doc,
      [target, min_value, exclusive_min](const std::string& value) -> Status {
        NDE_ASSIGN_OR_RETURN(double parsed, ParseDouble(value));
        if (exclusive_min ? parsed <= min_value : parsed < min_value) {
          return Status::InvalidArgument(
              StrFormat("must be %s %s, got '%s'",
                        exclusive_min ? "greater than" : "at least",
                        FormatDouble(min_value).c_str(), value.c_str()));
        }
        *target = parsed;
        return Status::OK();
      },
      [target]() -> std::string { return FormatDouble(*target); });
}

void AlgorithmInstance::BindEstimatorOptions(EstimatorOptions* options) {
  BindUint64("seed", "base RNG seed; a fixed seed fixes the result "
             "bit-for-bit at any thread count", &options->seed);
  BindSize("num_threads", "worker threads for the utility fan-out "
           "(0 = process default)", &options->num_threads);
  BindDouble("convergence_tolerance",
             "stop sampling once every std error is at or below this "
             "(0 disables early stopping)",
             &options->convergence_tolerance, 0.0, false);
  BindBool("use_prefix_scan",
           "use the utility's incremental prefix-scan fast path",
           &options->use_prefix_scan);
  BindBool("warm_start",
           "allow approximate warm-started prefix training for models "
           "without an exact scan", &options->warm_start);
  BindSize("max_retries",
           "retry budget per utility evaluation for transient failures",
           &options->max_retries);
  BindUint32("retry_backoff_ms",
             "base retry backoff in ms, doubled per attempt",
             &options->retry_backoff_ms);
}

namespace {

Status CheckTrainValidation(const AlgorithmInstance& algorithm,
                            const RunInput& input, bool needs_validation) {
  if (input.train == nullptr) {
    return Status::InvalidArgument("algorithm '" + algorithm.name() +
                                   "' needs a training dataset");
  }
  if (needs_validation && input.validation == nullptr) {
    return Status::InvalidArgument("algorithm '" + algorithm.name() +
                                   "' needs a validation dataset");
  }
  return Status::OK();
}

/// Shared base for the estimators driven by the retrain-and-score proxy
/// utility (loo, tmc_shapley, banzhaf, beta_shapley). The proxy model is
/// selectable: KNN and Gaussian NB have exact prefix-scan scorers, logistic
/// regression rides the approximate warm-start scan when enabled.
class GameAlgorithm : public AlgorithmInstance {
 protected:
  GameAlgorithm(std::string name, std::string summary)
      : AlgorithmInstance(std::move(name), std::move(summary)) {}

  /// Call from the subclass constructor after its option struct holds its
  /// defaults (binders snapshot defaults at bind time).
  void BindGameOptions(EstimatorOptions* options) {
    BindOption(
        "model", OptionType::kString,
        "proxy model retrained per coalition: knn | gaussian_nb | logreg "
        "(knn and gaussian_nb have exact prefix scans; logreg needs "
        "warm_start for a fast path)",
        [this](const std::string& value) -> Status {
          if (value != "knn" && value != "gaussian_nb" && value != "logreg") {
            return Status::InvalidArgument(
                "expects knn|gaussian_nb|logreg, got '" + value + "'");
          }
          model_ = value;
          return Status::OK();
        },
        [this]() -> std::string { return model_; });
    BindSize("k", "neighbors of the KNN proxy model", &k_, 1);
    BindBool("utility_cache",
             "memoize utility values in the sharded subset cache",
             &utility_cache_);
    BindBool("soa_kernels",
             "use the SoA prefix-scan kernels (bit-identical; off only to "
             "compare kernel layouts)", &soa_kernels_);
    BindBool("float32",
             "approximate float32 distance storage on the KNN prefix-scan "
             "kernel (changes bits; deterministic for any thread count)",
             &float32_);
    BindBool("arena",
             "back prefix-scan scorer state with pooled arena allocation "
             "(placement only, never changes results)", &arena_);
    BindEstimatorOptions(options);
  }

  Result<std::unique_ptr<ModelAccuracyUtility>> MakeUtility(
      const RunInput& input) const {
    if (cancel_requested()) {
      return Status::Cancelled("'" + name() + "' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, true));
    UtilityFastPathOptions fast_path;
    fast_path.subset_cache = utility_cache_;
    fast_path.soa_kernels = soa_kernels_;
    fast_path.float32 = float32_;
    fast_path.arena = arena_;
    ClassifierFactory factory;
    if (model_ == "gaussian_nb") {
      factory = [] { return std::make_unique<GaussianNaiveBayes>(); };
    } else if (model_ == "logreg") {
      factory = [] { return std::make_unique<LogisticRegression>(); };
    } else {
      size_t k = k_;
      factory = [k] { return std::make_unique<KnnClassifier>(k); };
    }
    return std::make_unique<ModelAccuracyUtility>(
        std::move(factory), *input.train, *input.validation, fast_path);
  }

 private:
  std::string model_ = "knn";
  size_t k_ = 5;
  bool utility_cache_ = false;
  bool soa_kernels_ = true;
  bool float32_ = false;
  bool arena_ = true;
};

class LooAlgorithm final : public GameAlgorithm {
 public:
  LooAlgorithm()
      : GameAlgorithm("loo",
                      "leave-one-out importance under the KNN proxy utility: "
                      "phi_i = v(N) - v(N minus i)") {
    BindGameOptions(&options_);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    NDE_ASSIGN_OR_RETURN(std::unique_ptr<ModelAccuracyUtility> utility,
                         MakeUtility(input));
    EstimatorOptions options = options_;
    ApplyRuntime(&options);
    NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                         LeaveOneOutValues(*utility, options));
    ImportanceEstimate estimate;
    estimate.values = std::move(values);
    estimate.utility_evaluations = utility->num_evaluations();
    return estimate;
  }

 private:
  EstimatorOptions options_;
};

class TmcShapleyAlgorithm final : public GameAlgorithm {
 public:
  TmcShapleyAlgorithm()
      : GameAlgorithm("tmc_shapley",
                      "truncated Monte-Carlo permutation-sampling Shapley "
                      "values (Ghorbani & Zou 2019)") {
    BindGameOptions(&options_);
    BindSize("num_permutations", "sampled permutations",
             &options_.num_permutations, 1);
    BindDouble("truncation_tolerance",
               "take remaining marginals as zero once |v(prefix) - v(N)| "
               "falls below this (0 disables truncation)",
               &options_.truncation_tolerance, 0.0, false);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    NDE_ASSIGN_OR_RETURN(std::unique_ptr<ModelAccuracyUtility> utility,
                         MakeUtility(input));
    TmcShapleyOptions options = options_;
    ApplyRuntime(&options);
    return TmcShapleyValues(*utility, options);
  }

 private:
  TmcShapleyOptions options_;
};

class BanzhafAlgorithm final : public GameAlgorithm {
 public:
  BanzhafAlgorithm()
      : GameAlgorithm("banzhaf",
                      "maximum-sample-reuse Banzhaf values (Wang & Jia "
                      "2023)") {
    BindGameOptions(&options_);
    BindSize("num_samples", "random subsets drawn", &options_.num_samples, 1);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    NDE_ASSIGN_OR_RETURN(std::unique_ptr<ModelAccuracyUtility> utility,
                         MakeUtility(input));
    BanzhafOptions options = options_;
    ApplyRuntime(&options);
    return BanzhafValues(*utility, options);
  }

 private:
  BanzhafOptions options_;
};

class BetaShapleyAlgorithm final : public GameAlgorithm {
 public:
  BetaShapleyAlgorithm()
      : GameAlgorithm("beta_shapley",
                      "Beta(alpha, beta)-weighted semivalues by stratified "
                      "cardinality sampling (Kwon & Zou 2022)") {
    BindGameOptions(&options_);
    BindDouble("alpha", "Beta distribution alpha; (1,1) recovers Shapley",
               &options_.alpha, 0.0, true);
    BindDouble("beta", "Beta distribution beta", &options_.beta, 0.0, true);
    BindSize("samples_per_unit", "sampled coalitions per training row",
             &options_.samples_per_unit, 1);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    NDE_ASSIGN_OR_RETURN(std::unique_ptr<ModelAccuracyUtility> utility,
                         MakeUtility(input));
    BetaShapleyOptions options = options_;
    ApplyRuntime(&options);
    return BetaShapleyValues(*utility, options);
  }

 private:
  BetaShapleyOptions options_;
};

class KnnShapleyAlgorithm final : public AlgorithmInstance {
 public:
  KnnShapleyAlgorithm()
      : AlgorithmInstance("knn_shapley",
                          "exact Shapley values of the soft K-NN utility in "
                          "O(n log n) per validation point (Jia et al. "
                          "2019)") {
    BindSize("k", "neighbors of the KNN utility", &k_, 1);
    BindEstimatorOptions(&options_);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    if (cancel_requested()) {
      return Status::Cancelled("'knn_shapley' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, true));
    EstimatorOptions options = options_;
    ApplyRuntime(&options);
    ImportanceEstimate estimate;
    estimate.values =
        KnnShapleyValues(*input.train, *input.validation, k_, options);
    return estimate;
  }

 private:
  size_t k_ = 5;
  EstimatorOptions options_;
};

class DatascopeAlgorithm final : public AlgorithmInstance {
 public:
  DatascopeAlgorithm()
      : AlgorithmInstance(
            "datascope",
            "pipeline-aware source-tuple importance: exact KNN-Shapley over "
            "the pipeline output attributed to source rows via provenance "
            "(Karlas et al. 2023)") {
    BindSize("k", "neighbors of the KNN proxy game", &k_, 1);
    BindEstimatorOptions(&options_);
  }

  bool values_are_source_rows() const override { return true; }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    if (cancel_requested()) {
      return Status::Cancelled("'datascope' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, true));
    if (input.pipeline_output == nullptr) {
      return Status::InvalidArgument(
          "algorithm 'datascope' needs pipeline provenance; run it through "
          "an MlPipeline (CSV jobs and `nde_cli importance <table.csv>` "
          "provide it)");
    }
    EstimatorOptions options = options_;
    ApplyRuntime(&options);
    NDE_ASSIGN_OR_RETURN(
        std::vector<double> values,
        KnnShapleyOverPipeline(*input.pipeline_output, *input.validation,
                               input.source_table_id, input.num_source_rows,
                               k_, options));
    ImportanceEstimate estimate;
    estimate.values = std::move(values);
    return estimate;
  }

 private:
  size_t k_ = 5;
  EstimatorOptions options_;
};

class InfluenceAlgorithm final : public AlgorithmInstance {
 public:
  InfluenceAlgorithm()
      : AlgorithmInstance("influence",
                          "influence-function approximation of each row's "
                          "effect on validation loss under L2 logistic "
                          "regression (binary labels only)") {
    BindDouble("l2", "L2 regularization of the logistic model", &options_.l2,
               0.0, false);
    BindSize("newton_iterations", "Newton steps for the model fit",
             &options_.newton_iterations, 1);
    BindBool("standardize", "z-score features before fitting",
             &options_.standardize);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    if (cancel_requested()) {
      return Status::Cancelled("'influence' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, true));
    NDE_ASSIGN_OR_RETURN(
        std::vector<double> values,
        InfluenceOnValidationLoss(*input.train, *input.validation, options_));
    ImportanceEstimate estimate;
    estimate.values = std::move(values);
    return estimate;
  }

 private:
  InfluenceOptions options_;
};

class AumAlgorithm final : public AlgorithmInstance {
 public:
  AumAlgorithm()
      : AlgorithmInstance("aum",
                          "area under the margin of a softmax logistic model "
                          "trained on the data itself; low margins flag "
                          "suspect labels (Pleiss et al. 2020)") {
    BindDouble("learning_rate", "gradient-descent step size",
               &options_.learning_rate, 0.0, true);
    BindSize("epochs", "training epochs", &options_.epochs, 1);
    BindDouble("l2", "L2 regularization", &options_.l2, 0.0, false);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    if (cancel_requested()) {
      return Status::Cancelled("'aum' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, false));
    NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                         AumScores(*input.train, options_));
    ImportanceEstimate estimate;
    estimate.values = std::move(values);
    return estimate;
  }

 private:
  AumOptions options_;
};

class SelfConfidenceAlgorithm final : public AlgorithmInstance {
 public:
  SelfConfidenceAlgorithm()
      : AlgorithmInstance("self_confidence",
                          "out-of-fold predicted probability of each row's "
                          "assigned label under a KNN model; low values flag "
                          "suspect labels (confident learning)") {
    BindSize("num_folds", "cross-validation folds", &options_.num_folds, 2);
    BindUint64("seed", "fold-assignment RNG seed", &options_.seed);
    BindSize("k", "neighbors of the KNN model", &k_, 1);
  }

  Result<ImportanceEstimate> Run(const RunInput& input) const override {
    if (cancel_requested()) {
      return Status::Cancelled("'self_confidence' cancelled before start");
    }
    NDE_RETURN_IF_ERROR(CheckTrainValidation(*this, input, false));
    size_t k = k_;
    NDE_ASSIGN_OR_RETURN(
        std::vector<double> values,
        SelfConfidenceScores([k]() { return std::make_unique<KnnClassifier>(k); },
                             *input.train, options_));
    ImportanceEstimate estimate;
    estimate.values = std::move(values);
    return estimate;
  }

 private:
  SelfConfidenceOptions options_;
  size_t k_ = 5;
};

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    (void)r->Register([] { return std::make_unique<LooAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<TmcShapleyAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<BanzhafAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<BetaShapleyAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<KnnShapleyAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<DatascopeAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<InfluenceAlgorithm>(); });
    (void)r->Register([] { return std::make_unique<AumAlgorithm>(); });
    (void)r->Register(
        [] { return std::make_unique<SelfConfidenceAlgorithm>(); });
    return r;
  }();
  return *registry;
}

Status AlgorithmRegistry::Register(AlgorithmFactory factory) {
  std::unique_ptr<AlgorithmInstance> probe = factory();
  if (probe == nullptr) {
    return Status::InvalidArgument("algorithm factory returned null");
  }
  std::string name = probe->name();
  if (factories_.count(name) > 0) {
    return Status::AlreadyExists("algorithm '" + name +
                                 "' is already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

Result<std::unique_ptr<AlgorithmInstance>> AlgorithmRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string available;
    for (const std::string& known : Names()) {
      if (!available.empty()) available += " ";
      available += known;
    }
    return Status::NotFound("no algorithm named '" + name +
                            "' (available: " + available + ")");
  }
  return it->second();
}

bool AlgorithmRegistry::Has(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string AlgorithmRegistry::DescribeJson() const {
  using telemetry::JsonEscape;
  std::ostringstream os;
  os << "{\"algorithms\":[";
  bool first_algorithm = true;
  for (const std::string& name : Names()) {
    std::unique_ptr<AlgorithmInstance> instance = factories_.at(name)();
    if (!first_algorithm) os << ",";
    first_algorithm = false;
    os << "{\"name\":\"" << JsonEscape(instance->name()) << "\",\"summary\":\""
       << JsonEscape(instance->summary()) << "\",\"values\":\""
       << (instance->values_are_source_rows() ? "source_rows" : "train_rows")
       << "\",\"options\":[";
    bool first_option = true;
    for (const OptionSpec& spec : instance->OptionSpecs()) {
      if (!first_option) os << ",";
      first_option = false;
      os << "{\"name\":\"" << JsonEscape(spec.name) << "\",\"type\":\""
         << OptionTypeName(spec.type) << "\",\"default\":\""
         << JsonEscape(spec.default_value) << "\",\"doc\":\""
         << JsonEscape(spec.doc) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string AlgorithmRegistry::DescribeText() const {
  std::ostringstream os;
  os << "available algorithms (set options with --set name=value or the "
        "job-API \"options\" map):\n";
  for (const std::string& name : Names()) {
    std::unique_ptr<AlgorithmInstance> instance = factories_.at(name)();
    os << "\n" << instance->name() << "\n  " << instance->summary() << "\n";
    for (const OptionSpec& spec : instance->OptionSpecs()) {
      os << "    " << spec.name << " (" << OptionTypeName(spec.type)
         << ", default " << spec.default_value << ") — " << spec.doc << "\n";
    }
  }
  return os.str();
}

}  // namespace nde
