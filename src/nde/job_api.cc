#include "nde/job_api.h"

#include <sys/stat.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "nde/engine.h"
#include "nde/registry.h"
#include "telemetry/health.h"
#include "telemetry/run_report.h"
#include "telemetry/trace.h"

namespace nde {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kError:
      return "error";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

using telemetry::HttpRequest;
using telemetry::JsonEscape;
using telemetry::MakeHttpResponse;

/// Shortest decimal spelling that strtod parses back to exactly `value`, so
/// a client reading job values gets the same bits the estimator produced
/// (the CLI-vs-API determinism test relies on this).
std::string FormatDouble(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::string text = StrFormat("%.*g", precision, value);
    if (std::strtod(text.c_str(), nullptr) == value) return text;
  }
  return StrFormat("%.17g", value);
}

std::string ErrorJson(const Status& status) {
  return std::string("{\"error\":{\"code\":\"") +
         StatusCodeToString(status.code()) + "\",\"message\":\"" +
         JsonEscape(status.message()) + "\"}}\n";
}

/// Maps a submit/parse failure to its HTTP status.
std::string ErrorResponse(const Status& status) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return MakeHttpResponse(429, "Too Many Requests", "application/json",
                            ErrorJson(status));
  }
  if (status.code() == StatusCode::kNotFound) {
    return MakeHttpResponse(404, "Not Found", "application/json",
                            ErrorJson(status));
  }
  return MakeHttpResponse(400, "Bad Request", "application/json",
                          ErrorJson(status));
}

std::string MethodNotAllowed(const std::string& allowed) {
  return MakeHttpResponse(405, "Method Not Allowed", "text/plain",
                          "method not allowed; use " + allowed + "\n");
}

Result<JobRequest> ParseJobRequest(const std::string& body) {
  NDE_ASSIGN_OR_RETURN(json::Value doc, json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  JobRequest request;
  for (const auto& [key, value] : doc.members()) {
    if (key == "algorithm" || key == "label" || key == "csv" ||
        key == "csv_path") {
      if (!value.is_string()) {
        return Status::InvalidArgument("field \"" + key +
                                       "\" must be a string");
      }
      if (key == "algorithm") request.algorithm = value.as_string();
      if (key == "label") request.label = value.as_string();
      if (key == "csv") request.csv_data = value.as_string();
      if (key == "csv_path") request.csv_path = value.as_string();
      continue;
    }
    if (key == "options") {
      if (!value.is_object()) {
        return Status::InvalidArgument("field \"options\" must be an object");
      }
      for (const auto& [option, option_value] : value.members()) {
        if (option_value.is_string()) {
          request.options[option] = option_value.as_string();
        } else if (option_value.is_number() || option_value.is_bool()) {
          // Keep the exact source spelling ("1e-3", "true") so configuring
          // from JSON equals configuring from the same string on the CLI.
          request.options[option] = option_value.raw();
        } else {
          return Status::InvalidArgument(
              "option \"" + option +
              "\" must be a string, number, or boolean");
        }
      }
      continue;
    }
    return Status::InvalidArgument(
        "unknown field \"" + key +
        "\" (expected algorithm, label, csv, csv_path, options)");
  }
  return request;
}

void AppendDoubles(std::ostringstream& os, const std::vector<double>& values) {
  os << "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << FormatDouble(values[i]);
  }
  os << "]";
}

std::string SnapshotJson(const JobSnapshot& snapshot, bool summary_only) {
  std::ostringstream os;
  os << "{\"id\":\"" << JsonEscape(snapshot.id) << "\",\"algorithm\":\""
     << JsonEscape(snapshot.algorithm) << "\",\"state\":\""
     << JobStateName(snapshot.state) << "\",\"progress\":{\"completed\":"
     << snapshot.progress_completed << ",\"total\":"
     << snapshot.progress_total << "}";
  if (!summary_only && snapshot.state == JobState::kDone) {
    os << ",\"result\":{\"values\":";
    AppendDoubles(os, snapshot.estimate.values);
    os << ",\"std_errors\":";
    AppendDoubles(os, snapshot.estimate.std_errors);
    os << ",\"ranked_rows\":[";
    for (size_t i = 0; i < snapshot.ranked_rows.size(); ++i) {
      if (i > 0) os << ",";
      os << snapshot.ranked_rows[i];
    }
    os << "],\"utility_evaluations\":" << snapshot.estimate.utility_evaluations
       << ",\"num_threads_used\":" << snapshot.estimate.num_threads_used
       << ",\"train_rows\":" << snapshot.train_rows
       << ",\"valid_rows\":" << snapshot.valid_rows << "}";
  }
  if (!snapshot.error.ok()) {
    os << ",\"error\":{\"code\":\"" << StatusCodeToString(snapshot.error.code())
       << "\",\"message\":\"" << JsonEscape(snapshot.error.message()) << "\"}";
  }
  if (!snapshot.artifact_path.empty()) {
    os << ",\"artifact\":\"" << JsonEscape(snapshot.artifact_path) << "\"";
  }
  if (snapshot.trace.has_trace()) {
    os << ",\"trace_id\":\"" << TraceIdHex(snapshot.trace) << "\"";
  }
  os << "}";
  return os.str();
}

/// GET /jobs/<id>/eventz body (also the `<id>.events.json` artifact): the
/// job's wave-boundary timeline.
std::string EventsJson(const JobSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"job_id\":\"" << JsonEscape(snapshot.id) << "\",\"algorithm\":\""
     << JsonEscape(snapshot.algorithm) << "\",\"trace_id\":\""
     << (snapshot.trace.has_trace() ? TraceIdHex(snapshot.trace)
                                    : std::string())
     << "\",\"waves\":[";
  bool first = true;
  for (const JobWaveEvent& event : snapshot.events) {
    if (!first) os << ",";
    first = false;
    os << "{\"wave\":" << event.wave << ",\"phase\":\""
       << JsonEscape(event.phase) << "\",\"ts_us\":" << event.ts_us
       << ",\"dur_us\":" << event.dur_us
       << ",\"completed\":" << event.completed << ",\"total\":" << event.total
       << ",\"utility_evaluations\":" << event.utility_evaluations
       << ",\"max_std_error\":" << FormatDouble(event.max_std_error) << "}";
  }
  os << "]}";
  return os.str();
}

/// GET /jobs/<id>/tracez body: the job's spans, filtered from the global
/// trace buffer by the job's trace id, with parent linkage so clients can
/// rebuild the span tree.
std::string JobTracezJson(const JobSnapshot& snapshot) {
  std::vector<telemetry::TraceEvent> events =
      telemetry::TraceBuffer::Global().Snapshot();
  std::ostringstream os;
  os << "{\"job_id\":\"" << JsonEscape(snapshot.id) << "\",\"trace_id\":\""
     << (snapshot.trace.has_trace() ? TraceIdHex(snapshot.trace)
                                    : std::string())
     << "\",\"spans\":[";
  bool first = true;
  for (const telemetry::TraceEvent& event : events) {
    if (event.trace_id_hi != snapshot.trace.trace_id_hi ||
        event.trace_id_lo != snapshot.trace.trace_id_lo ||
        !snapshot.trace.has_trace()) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"category\":\""
       << JsonEscape(event.category) << "\",\"ts_us\":" << event.ts_us
       << ",\"dur_us\":" << event.dur_us << ",\"tid\":" << event.tid
       << ",\"span_id\":\"" << SpanIdHex(event.span_id)
       << "\",\"parent_span_id\":\""
       << (event.parent_span_id != 0 ? SpanIdHex(event.parent_span_id)
                                     : std::string())
       << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

struct JobManager::Job {
  std::string id;
  JobRequest request;
  /// Trace attribution, fixed at submit time (adopted from the submitter's
  /// ambient context or freshly minted) and immutable afterwards.
  TraceContext trace;
  std::atomic<bool> cancel{false};
  std::atomic<size_t> progress_completed{0};
  std::atomic<size_t> progress_total{0};
  // Everything below is guarded by the owning manager's mu_.
  JobState state = JobState::kQueued;
  ImportanceEstimate estimate;
  std::vector<uint32_t> ranked_rows;
  size_t train_rows = 0;
  size_t valid_rows = 0;
  Status error;
  std::string artifact_path;
  std::vector<JobWaveEvent> events;
};

JobManager::JobManager(JobApiOptions options) : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (!options_.artifact_dir.empty()) {
    // Best-effort: an unwritable directory surfaces later as a per-job
    // artifact write failure, not a construction failure.
    ::mkdir(options_.artifact_dir.c_str(), 0755);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  pool_.reset();  // drains: queued jobs run (and see their cancel flag)
}

Result<std::string> JobManager::Submit(const JobRequest& request) {
  if (request.algorithm.empty()) {
    return Status::InvalidArgument("\"algorithm\" is required");
  }
  if (request.label.empty()) {
    return Status::InvalidArgument("\"label\" is required");
  }
  if (request.csv_path.empty() == request.csv_data.empty()) {
    return Status::InvalidArgument(
        "exactly one of \"csv\" (inline data) or \"csv_path\" is required");
  }
  // Fail fast on an unknown algorithm or a bad option map: the client gets a
  // 400 at submit time instead of a job that dies later.
  NDE_ASSIGN_OR_RETURN(std::unique_ptr<AlgorithmInstance> probe,
                       AlgorithmRegistry::Global().Create(request.algorithm));
  NDE_RETURN_IF_ERROR(probe->ConfigureAll(request.options));

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ >= options_.max_queued) {
      return Status::ResourceExhausted(
          StrFormat("job queue is full (%zu pending); retry later",
                    pending_));
    }
    job = std::make_shared<Job>();
    job->id = StrFormat("job-%zu", next_id_++);
    job->request = request;
    // Adopt the submitter's trace (the one HTTP ingress installed from the
    // request's traceparent) so the caller's id follows the job; mint one
    // for contextless submitters (tests, embedded use). Either way the job
    // id and algorithm ride along for log/metric attribution.
    job->trace = CurrentTraceContext().has_trace() ? CurrentTraceContext()
                                                   : MintTraceContext();
    job->trace.job_id = job->id;
    job->trace.algorithm = request.algorithm;
    jobs_[job->id] = job;
    order_.push_back(job->id);
    ++pending_;
  }
  pool_->Submit([this, job] { Execute(job); });
  return job->id;
}

void JobManager::Execute(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    if (job->cancel.load(std::memory_order_relaxed)) {
      job->state = JobState::kCancelled;
      job->error = Status::Cancelled("job cancelled before it started");
      return;
    }
    job->state = JobState::kRunning;
  }
  Status status = RunJob(job.get());
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    job->state = JobState::kDone;
    // A healthy job run clears a degraded /healthz left by an earlier
    // failure, mirroring the CLI's lifecycle (one process, latest outcome).
    telemetry::SetHealthy();
  } else if (status.code() == StatusCode::kCancelled) {
    job->state = JobState::kCancelled;
    job->error = status;
  } else {
    job->state = JobState::kError;
    job->error = status;
    telemetry::SetDegraded(status.ToString());
  }
}

Status JobManager::RunJob(Job* job) {
  // The job's whole execution — estimator waves, pool fan-out, logging —
  // runs under its trace context: spans parent into this trace, NDE_LOG
  // records carry trace_id/job_id, and labeled metrics resolve the job's
  // labels from here.
  ScopedTraceContext trace_scope{TraceContext(job->trace)};
  NDE_LOG(INFO) << "job " << job->id << " started: algorithm="
                << job->request.algorithm;
  telemetry::RunReport report("job:" + job->request.algorithm);
  report.SetConfig("job_id", job->id);
  report.SetConfig("algorithm", job->request.algorithm);
  if (job->trace.has_trace()) {
    report.SetConfig("trace_id", TraceIdHex(job->trace));
  }
  report.SetConfig("label", job->request.label);
  if (!job->request.csv_path.empty()) {
    report.SetConfig("csv_path", job->request.csv_path);
  }
  for (const auto& [option, value] : job->request.options) {
    report.SetConfig("option." + option, value);
  }

  Status status = [&]() -> Status {
    Result<Table> table = job->request.csv_path.empty()
                              ? ReadCsvString(job->request.csv_data)
                              : ReadCsvFile(job->request.csv_path);
    NDE_RETURN_IF_ERROR(table.status());
    NDE_ASSIGN_OR_RETURN(
        std::unique_ptr<AlgorithmInstance> algorithm,
        AlgorithmRegistry::Global().Create(job->request.algorithm));
    NDE_RETURN_IF_ERROR(algorithm->ConfigureAll(job->request.options));
    algorithm->SetCancelFlag(&job->cancel);
    telemetry::RunReport* report_ptr = &report;
    int64_t job_start_us = telemetry::NowMicros();
    algorithm->SetProgress([this, job, report_ptr,
                            job_start_us](const ProgressUpdate& update) {
      job->progress_completed.store(update.completed,
                                    std::memory_order_relaxed);
      job->progress_total.store(update.total, std::memory_order_relaxed);
      report_ptr->RecordProgress(update);
      // Wave timeline for /jobs/<id>/eventz. Callbacks fire on the job's
      // coordinating thread at wave boundaries, so appending under mu_ is
      // uncontended and purely observational (determinism contract intact).
      JobWaveEvent event;
      event.ts_us = telemetry::NowMicros();
      event.phase = update.phase;
      event.completed = update.completed;
      event.total = update.total;
      event.utility_evaluations = update.utility_evaluations;
      event.max_std_error = update.max_std_error;
      std::lock_guard<std::mutex> lock(mu_);
      event.wave = job->events.size() + 1;
      event.dur_us = event.ts_us - (job->events.empty()
                                        ? job_start_us
                                        : job->events.back().ts_us);
      job->events.push_back(std::move(event));
    });
    NDE_ASSIGN_OR_RETURN(
        TableRunResult result,
        RunAlgorithmOnTable(*algorithm, *table, job->request.label));
    if (result.estimate.aborted_early) {
      // Same contract as the CLI's exit 3: a partial estimate is not
      // published as a result; the abort cause is the job's outcome.
      return result.estimate.abort_cause;
    }
    std::lock_guard<std::mutex> lock(mu_);
    job->estimate = std::move(result.estimate);
    job->ranked_rows = std::move(result.ranked_rows);
    job->train_rows = result.train_rows;
    job->valid_rows = result.valid_rows;
    return Status::OK();
  }();

  if (!status.ok()) report.SetError(status, 3);
  if (!options_.artifact_dir.empty()) {
    std::string path = options_.artifact_dir + "/" + job->id + ".json";
    report.Finish();
    Status written = report.WriteFile(path);
    if (written.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      job->artifact_path = path;
    }
    // Persist the wave timeline next to the RunReport so a job's eventz view
    // survives the process (best-effort, like the report itself).
    Result<JobSnapshot> snapshot = Get(job->id);
    if (snapshot.ok()) {
      std::ofstream events_out(options_.artifact_dir + "/" + job->id +
                               ".events.json");
      if (events_out) events_out << EventsJson(*snapshot) << "\n";
    }
  }
  return status;
}

Result<JobSnapshot> JobManager::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id '" + id + "'");
  }
  const Job& job = *it->second;
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.algorithm = job.request.algorithm;
  snapshot.state = job.state;
  snapshot.progress_completed =
      job.progress_completed.load(std::memory_order_relaxed);
  snapshot.progress_total = job.progress_total.load(std::memory_order_relaxed);
  snapshot.estimate = job.estimate;
  snapshot.ranked_rows = job.ranked_rows;
  snapshot.train_rows = job.train_rows;
  snapshot.valid_rows = job.valid_rows;
  snapshot.error = job.error;
  snapshot.artifact_path = job.artifact_path;
  snapshot.trace = job.trace;
  snapshot.events = job.events;
  return snapshot;
}

std::vector<JobSnapshot> JobManager::List() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids = order_;
  }
  std::vector<JobSnapshot> snapshots;
  snapshots.reserve(ids.size());
  for (const std::string& id : ids) {
    Result<JobSnapshot> snapshot = Get(id);
    if (snapshot.ok()) snapshots.push_back(*std::move(snapshot));
  }
  return snapshots;
}

Status JobManager::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id '" + id + "'");
  }
  it->second->cancel.store(true, std::memory_order_relaxed);
  return Status::OK();
}

std::string JobManager::HandleHttp(const HttpRequest& request) {
  if (request.target == "/algorithmz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return MakeHttpResponse(200, "OK", "application/json",
                            AlgorithmRegistry::Global().DescribeJson() + "\n");
  }
  if (request.target == "/jobs") {
    if (request.method == "POST") {
      Result<JobRequest> parsed = ParseJobRequest(request.body);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      Result<std::string> id = Submit(*parsed);
      if (!id.ok()) return ErrorResponse(id.status());
      return MakeHttpResponse(202, "Accepted", "application/json",
                              "{\"id\":\"" + *id +
                                  "\",\"state\":\"queued\"}\n");
    }
    if (request.method == "GET") {
      std::ostringstream os;
      os << "{\"jobs\":[";
      bool first = true;
      for (const JobSnapshot& snapshot : List()) {
        if (!first) os << ",";
        first = false;
        os << SnapshotJson(snapshot, /*summary_only=*/true);
      }
      os << "]}\n";
      return MakeHttpResponse(200, "OK", "application/json", os.str());
    }
    return MethodNotAllowed("GET or POST");
  }
  if (StartsWith(request.target, "/jobs/")) {
    std::string id = request.target.substr(6);
    std::string view;
    size_t slash = id.find('/');
    if (slash != std::string::npos) {
      view = id.substr(slash + 1);
      id.resize(slash);
    }
    if (!view.empty()) {
      if (request.method != "GET") return MethodNotAllowed("GET");
      Result<JobSnapshot> snapshot = Get(id);
      if (!snapshot.ok()) return ErrorResponse(snapshot.status());
      if (view == "tracez") {
        if (request.query.find("folded=1") != std::string::npos) {
          return MakeHttpResponse(
              200, "OK", "text/plain",
              telemetry::TraceBuffer::Global().FoldedForTrace(
                  snapshot->trace.trace_id_hi, snapshot->trace.trace_id_lo));
        }
        return MakeHttpResponse(200, "OK", "application/json",
                                JobTracezJson(*snapshot) + "\n");
      }
      if (view == "eventz") {
        return MakeHttpResponse(200, "OK", "application/json",
                                EventsJson(*snapshot) + "\n");
      }
      return MakeHttpResponse(404, "Not Found", "text/plain",
                              "unknown job view; try tracez or eventz\n");
    }
    if (request.method == "GET") {
      Result<JobSnapshot> snapshot = Get(id);
      if (!snapshot.ok()) return ErrorResponse(snapshot.status());
      return MakeHttpResponse(
          200, "OK", "application/json",
          SnapshotJson(*snapshot, /*summary_only=*/false) + "\n");
    }
    if (request.method == "DELETE") {
      Status cancelled = Cancel(id);
      if (!cancelled.ok()) return ErrorResponse(cancelled);
      Result<JobSnapshot> snapshot = Get(id);
      if (!snapshot.ok()) return ErrorResponse(snapshot.status());
      return MakeHttpResponse(
          200, "OK", "application/json",
          SnapshotJson(*snapshot, /*summary_only=*/true) + "\n");
    }
    return MethodNotAllowed("GET or DELETE");
  }
  return MakeHttpResponse(404, "Not Found", "text/plain",
                          "unknown path; try /jobs /algorithmz\n");
}

}  // namespace nde
