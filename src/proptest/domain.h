#ifndef NDE_PROPTEST_DOMAIN_H_
#define NDE_PROPTEST_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "importance/game_values.h"
#include "ml/dataset.h"
#include "pipeline/pipeline.h"
#include "proptest/gen.h"

namespace nde {
namespace prop {

/// Domain generators: typed Gen<T>s over the library's own input space —
/// datasets, CSV bytes, tables, estimator options, pipeline operator chains,
/// and error-injector mixes. Every invariant suite in tests/ draws its cases
/// from here, so "random dataset" means the same thing everywhere, and every
/// shrunk counterexample renders as a pasteable CSV snippet via the Describe
/// functions.

/// --- Datasets ---------------------------------------------------------------

/// A matched train/validation pair for estimator invariants: Gaussian blobs
/// sharing class centers (so validation is from the same task), sizes and
/// shape drawn per case. Shrinks by dropping train rows (down to 2), then
/// validation rows (down to 1).
struct ImportanceScenario {
  MlDataset train;
  MlDataset valid;
};

Gen<ImportanceScenario> AnyImportanceScenario(size_t max_train = 18,
                                              size_t max_valid = 6,
                                              size_t max_features = 4,
                                              int max_classes = 3);

/// A single random dataset (blobs with random shape/noise). Shrinks by
/// dropping rows down to `min_rows`.
Gen<MlDataset> AnyDataset(size_t min_rows = 2, size_t max_rows = 24,
                          size_t max_features = 4, int max_classes = 3);

/// CSV rendering of a dataset ("f0,...,label" header) — pasteable replay.
std::string DescribeDataset(const MlDataset& data);
std::string DescribeScenario(const ImportanceScenario& scenario);

/// --- Tables and CSV bytes ---------------------------------------------------

/// A random typed table: 1..max_cols columns of mixed int64/double/string
/// types, ~15% nulls, adversarial strings (delimiters, quotes, embedded
/// newlines and CRLF — the writer must quote them and the reader must get
/// them back). Doubles occasionally NaN. Shrinks by dropping rows, then
/// columns (down to 1).
Gen<Table> AnyTable(size_t max_rows = 16, size_t max_cols = 4);

/// Raw CSV text, structured but nasty: random quoting, CRLF and LF endings,
/// missing trailing newline, ragged rows, empty fields, the n/a null marker,
/// NaN spellings, wide rows. The reader must either parse it or return a
/// typed error — never crash or mis-shape. Shrinks by dropping lines.
Gen<std::string> AnyCsvText(size_t max_rows = 12, size_t max_cols = 5);

/// Pasteable renderings. Tables render as their exact CSV serialization;
/// raw text renders with escapes so CR/LF survive a terminal copy.
std::string DescribeTable(const Table& table);
std::string DescribeCsvText(const std::string& text);

/// --- Estimator options ------------------------------------------------------

/// Random estimator options with small budgets (properties run hundreds of
/// estimates per suite). Seeds are drawn per case; thread counts are left at
/// the caller's discretion (thread-identity suites sweep them explicitly).
/// Shrinks budgets toward their minimum and tolerances toward 0.
Gen<TmcShapleyOptions> AnyTmcOptions(size_t max_permutations = 12);
Gen<BanzhafOptions> AnyBanzhafOptions(size_t max_samples = 48);
Gen<BetaShapleyOptions> AnyBetaOptions(size_t max_samples_per_unit = 12);

std::string DescribeTmcOptions(const TmcShapleyOptions& options);

/// --- Error-injector mixes ---------------------------------------------------

/// A layered corruption recipe over an MlDataset, drawing on the Figure 1
/// error taxonomy: label flips, feature noise, and out-of-distribution
/// outliers, each with its own rate. Shrinks every rate toward 0.
struct ErrorMix {
  double label_flip_fraction = 0.0;
  double noise_fraction = 0.0;
  double noise_scale = 0.0;
  double outlier_fraction = 0.0;
  double outlier_shift = 0.0;
};

Gen<ErrorMix> AnyErrorMix(double max_fraction = 0.3);

/// Applies the mix in a fixed order (flips, noise, outliers) and returns the
/// union of corrupted row indices, sorted and unique.
std::vector<size_t> ApplyErrorMix(MlDataset* data, const ErrorMix& mix,
                                  Rng* rng);

std::string DescribeErrorMix(const ErrorMix& mix);

/// --- Pipeline operator chains -----------------------------------------------

/// One row-local pipeline operator.
struct PipelineOp {
  enum class Kind {
    kFilterThreshold,  ///< keep rows where column <op> threshold
    kDropColumn,       ///< project away one feature column
  };
  Kind kind = Kind::kFilterThreshold;
  size_t column = 0;  ///< feature-column ordinal (fN); never the label
  double threshold = 0.0;
  bool keep_above = true;
};

/// A numeric table plus a random chain of row-local operators ending in the
/// usual encode step; the substrate for provenance/removal invariants.
/// Shrinks by removing operators, then rows.
struct PipelineScenario {
  Table table;                   ///< columns f0..f{k-1} (double), y (int64)
  std::vector<PipelineOp> ops;
  uint64_t seed = 0;             ///< per-case stream for removal choices etc.
};

Gen<PipelineScenario> AnyPipelineScenario(size_t max_rows = 40,
                                          size_t max_features = 3,
                                          size_t max_ops = 3);

/// Builds the runnable pipeline for a scenario: source -> ops -> numeric
/// encoders over the surviving feature columns, labels from "y".
MlPipeline BuildScenarioPipeline(const PipelineScenario& scenario);

/// The feature columns still present after the scenario's projections.
std::vector<std::string> SurvivingFeatureColumns(
    const PipelineScenario& scenario);

std::string DescribePipelineScenario(const PipelineScenario& scenario);

}  // namespace prop
}  // namespace nde

#endif  // NDE_PROPTEST_DOMAIN_H_
