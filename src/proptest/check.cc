#include "proptest/check.h"

#include <cstdlib>

#include "common/string_util.h"

namespace nde {
namespace prop {

int DefaultNumCases(int fallback) {
  const char* env = std::getenv("NDE_PROP_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) return fallback;
  return static_cast<int>(value);
}

uint64_t BaseSeed(uint64_t fallback) {
  const char* env = std::getenv("NDE_PROP_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') return fallback;
  return static_cast<uint64_t>(value);
}

uint64_t CaseSeed(uint64_t base, int index) {
  // Case 0 IS the base seed: a reported failing seed replays as case 0.
  if (index == 0) return base;
  uint64_t state = base;
  uint64_t seed = 0;
  for (int i = 0; i < index; ++i) seed = internal::SplitMix64(&state);
  return seed;
}

std::string ReplayCommand(const CheckConfig& config, uint64_t failing_seed) {
  std::string command =
      StrFormat("NDE_PROP_SEED=%llu ",
                static_cast<unsigned long long>(failing_seed));
  if (!config.gtest_filter.empty()) {
    command += StrFormat("GTEST_FILTER='%s' ", config.gtest_filter.c_str());
  }
  command += StrFormat("ctest -R %s --output-on-failure",
                       config.ctest_target.c_str());
  return command;
}

}  // namespace prop
}  // namespace nde
