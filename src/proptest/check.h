#ifndef NDE_PROPTEST_CHECK_H_
#define NDE_PROPTEST_CHECK_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "proptest/gen.h"

namespace nde {
namespace prop {

/// The property-check driver (DESIGN.md §16).
///
/// A property over T is a function returning "" on pass and a non-empty
/// failure description otherwise. CheckProperty samples `num_cases` values,
/// each from its own splitmix64-derived seed; on the first failure it
/// greedily shrinks the counterexample (re-running the property on every
/// candidate) and returns a report containing:
///   - the exact one-line replay command
///     (`NDE_PROP_SEED=<seed> [GTEST_FILTER=...] ctest -R <target> ...`),
///   - the shrunk counterexample rendered by `describe` (for tables this is
///     a pasteable CSV snippet), and
///   - the original and final failure messages.
/// An empty return means every case passed.
///
/// Replay contract: case 0 always samples directly from the base seed, and
/// every failure reports the *failing case's own seed*, so exporting
/// NDE_PROP_SEED=<reported> reproduces the failure as case 0 of the rerun —
/// one command, no case-index bookkeeping.

/// Per-run knobs, mostly environment-driven so CI tiers can scale the case
/// budget without recompiling.
struct CheckConfig {
  /// Cases to run; 0 means DefaultNumCases() (NDE_PROP_CASES env, else 100).
  int num_cases = 0;
  /// Base seed; 0 means BaseSeed() (NDE_PROP_SEED env, else 42).
  uint64_t seed = 0;
  /// Hard cap on shrink rounds (each round tries one candidate list).
  int max_shrink_rounds = 200;
  /// The ctest test name for the replay line.
  std::string ctest_target = "proptest_test";
  /// Optional --gtest_filter value naming the failing TEST, included in the
  /// replay line when set (tests fill it from gtest's current_test_info).
  std::string gtest_filter;
};

/// NDE_PROP_CASES env value, else `fallback`.
int DefaultNumCases(int fallback = 100);

/// NDE_PROP_SEED env value, else `fallback`. Accepts decimal or 0x-hex.
uint64_t BaseSeed(uint64_t fallback = 42);

/// The seed for case `index` under `base`: case 0 is `base` itself (the
/// replay contract above), later cases are splitmix64 hops from it.
uint64_t CaseSeed(uint64_t base, int index);

/// Renders the one-line replay command for a failing seed.
std::string ReplayCommand(const CheckConfig& config, uint64_t failing_seed);

/// Fallback printer: numbers, strings, and vectors thereof render readably;
/// other types report that a describe function is needed.
template <typename T>
std::string DefaultDescribe(const T& value) {
  std::ostringstream os;
  if constexpr (std::is_arithmetic_v<T>) {
    os << value;
  } else if constexpr (std::is_convertible_v<T, std::string>) {
    os << std::string(value);
  } else {
    os << "(no describe function registered for this type)";
  }
  return os.str();
}

template <typename T>
std::string DefaultDescribe(const std::vector<T>& value) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < value.size(); ++i) {
    if (i > 0) os << ", ";
    os << DefaultDescribe(value[i]);
  }
  os << "]";
  return os.str();
}

/// Greedily shrinks `value` (already failing with `first_message`) under
/// `property`, counting re-checks. Returns the minimal failing value found;
/// `final_message` carries its failure text.
template <typename T>
T ShrinkCounterexample(const Gen<T>& gen, const T& value,
                       const std::function<std::string(const T&)>& property,
                       const CheckConfig& config, int* shrink_steps,
                       int* rechecks, std::string* final_message) {
  T current = value;
  for (int round = 0; round < config.max_shrink_rounds; ++round) {
    bool descended = false;
    for (T& candidate : gen.Shrink(current)) {
      ++*rechecks;
      std::string message = property(candidate);
      if (!message.empty()) {
        current = std::move(candidate);
        *final_message = std::move(message);
        ++*shrink_steps;
        descended = true;
        break;  // Greedy: restart from the smaller failing value.
      }
    }
    if (!descended) break;
  }
  return current;
}

/// Runs the property over the configured case budget. Returns "" when every
/// case passes, else the full failure report described above.
template <typename T>
std::string CheckProperty(
    const std::string& name, const Gen<T>& gen,
    const std::function<std::string(const T&)>& property,
    const std::function<std::string(const T&)>& describe = nullptr,
    CheckConfig config = {}) {
  if (config.num_cases <= 0) config.num_cases = DefaultNumCases();
  if (config.seed == 0) config.seed = BaseSeed();
  for (int i = 0; i < config.num_cases; ++i) {
    uint64_t case_seed = CaseSeed(config.seed, i);
    Rng rng(case_seed);
    T value = gen.Sample(&rng);
    std::string message = property(value);
    if (message.empty()) continue;

    int shrink_steps = 0;
    int rechecks = 0;
    std::string final_message = message;
    T shrunk = ShrinkCounterexample(gen, value, property, config,
                                    &shrink_steps, &rechecks, &final_message);
    std::ostringstream report;
    report << "property '" << name << "' failed at case " << i << " of "
           << config.num_cases << " (case seed " << case_seed << ")\n"
           << "replay: " << ReplayCommand(config, case_seed) << "\n"
           << "original failure: " << message << "\n"
           << "shrunk counterexample (" << shrink_steps << " shrink steps, "
           << rechecks << " property re-checks):\n"
           << (describe ? describe(shrunk) : DefaultDescribe(shrunk)) << "\n"
           << "shrunk failure: " << final_message;
    return report.str();
  }
  return "";
}

}  // namespace prop
}  // namespace nde

#endif  // NDE_PROPTEST_CHECK_H_
