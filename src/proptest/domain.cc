#include "proptest/domain.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "data/csv.h"
#include "datagen/synthetic.h"
#include "pipeline/encoders.h"

namespace nde {
namespace prop {

namespace {

/// Dataset minus the given rows, preserving order. (MlDataset::Without is
/// equivalent; reimplemented here so shrinking does not rely on the API under
/// test for its own bookkeeping.)
MlDataset DropRows(const MlDataset& data, const std::vector<size_t>& rows) {
  std::set<size_t> drop(rows.begin(), rows.end());
  std::vector<size_t> keep;
  keep.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    if (drop.count(i) == 0) keep.push_back(i);
  }
  return data.Subset(keep);
}

/// Row-removal shrink candidates for a dataset: halves first, then a few
/// single rows, never below `min_rows`.
std::vector<MlDataset> ShrinkDatasetRows(const MlDataset& data,
                                         size_t min_rows) {
  std::vector<MlDataset> candidates;
  size_t n = data.size();
  if (n <= min_rows) return candidates;
  if (n / 2 >= min_rows && n >= 2) {
    std::vector<size_t> first_half, second_half;
    for (size_t i = 0; i < n / 2; ++i) first_half.push_back(i);
    for (size_t i = n / 2; i < n; ++i) second_half.push_back(i);
    candidates.push_back(DropRows(data, second_half));
    candidates.push_back(DropRows(data, first_half));
  }
  const size_t kMaxSingle = 6;
  for (size_t i = 0; i < n && i < kMaxSingle; ++i) {
    if (n - 1 < min_rows) break;
    candidates.push_back(DropRows(data, {i}));
  }
  return candidates;
}

}  // namespace

/// --- Datasets ---------------------------------------------------------------

Gen<ImportanceScenario> AnyImportanceScenario(size_t max_train,
                                              size_t max_valid,
                                              size_t max_features,
                                              int max_classes) {
  return Gen<ImportanceScenario>(
      [max_train, max_valid, max_features, max_classes](Rng* rng) {
        BlobsOptions options;
        options.num_examples = 4 + rng->NextBounded(max_train - 3);
        options.num_features = 1 + rng->NextBounded(max_features);
        options.num_classes =
            2 + static_cast<int>(rng->NextBounded(
                    static_cast<uint64_t>(max_classes - 1)));
        options.separation = rng->NextUniform(1.0, 4.0);
        options.noise = rng->NextUniform(0.4, 1.2);
        options.seed = rng->NextUint64() | 1;  // Never the "reuse seed" 0.
        options.center_seed = rng->NextUint64() | 1;
        ImportanceScenario scenario;
        scenario.train = MakeBlobs(options);
        BlobsOptions valid_options = options;
        valid_options.num_examples = 2 + rng->NextBounded(max_valid - 1);
        valid_options.seed = rng->NextUint64() | 1;
        scenario.valid = MakeBlobs(valid_options);
        return scenario;
      },
      [](const ImportanceScenario& scenario) {
        std::vector<ImportanceScenario> candidates;
        for (MlDataset& smaller : ShrinkDatasetRows(scenario.train, 2)) {
          candidates.push_back(
              ImportanceScenario{std::move(smaller), scenario.valid});
        }
        for (MlDataset& smaller : ShrinkDatasetRows(scenario.valid, 1)) {
          candidates.push_back(
              ImportanceScenario{scenario.train, std::move(smaller)});
        }
        return candidates;
      });
}

Gen<MlDataset> AnyDataset(size_t min_rows, size_t max_rows,
                          size_t max_features, int max_classes) {
  NDE_CHECK_LE(min_rows, max_rows);
  return Gen<MlDataset>(
      [min_rows, max_rows, max_features, max_classes](Rng* rng) {
        BlobsOptions options;
        options.num_examples =
            min_rows + rng->NextBounded(max_rows - min_rows + 1);
        options.num_features = 1 + rng->NextBounded(max_features);
        options.num_classes =
            2 + static_cast<int>(rng->NextBounded(
                    static_cast<uint64_t>(max_classes - 1)));
        options.separation = rng->NextUniform(0.5, 4.0);
        options.noise = rng->NextUniform(0.3, 1.5);
        options.seed = rng->NextUint64() | 1;
        return MakeBlobs(options);
      },
      [min_rows](const MlDataset& data) {
        return ShrinkDatasetRows(data, min_rows);
      });
}

std::string DescribeDataset(const MlDataset& data) {
  TableBuilder builder;
  for (size_t j = 0; j < data.num_features(); ++j) {
    std::vector<double> column;
    column.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) column.push_back(data.features(i, j));
    builder.AddDoubleColumn(StrFormat("f%zu", j), std::move(column));
  }
  std::vector<int64_t> labels(data.labels.begin(), data.labels.end());
  builder.AddInt64Column("label", std::move(labels));
  return WriteCsvString(builder.Build());
}

std::string DescribeScenario(const ImportanceScenario& scenario) {
  return "train.csv:\n" + DescribeDataset(scenario.train) +
         "valid.csv:\n" + DescribeDataset(scenario.valid);
}

/// --- Tables and CSV bytes ---------------------------------------------------

namespace {

/// A string cell that is canonical under the reader: trimmed, non-empty, not
/// the null marker, and guaranteed non-numeric (contains a letter), so a
/// write->read round trip preserves it textually. May contain delimiters,
/// quotes, and embedded (non-edge) newlines/CRLF — the writer must quote
/// them.
std::string NastyStringCell(Rng* rng) {
  static const char kAlphabet[] = {'a', 'b', 'z', ',', '"', ' ',
                                   '\n', '\r', '\'', '|', ';', 'x'};
  size_t length = 1 + rng->NextBounded(10);
  std::string cell;
  for (size_t i = 0; i < length; ++i) {
    cell.push_back(kAlphabet[rng->NextBounded(std::size(kAlphabet))]);
  }
  std::string trimmed(StripWhitespace(cell));
  if (trimmed.empty() ||
      trimmed.find_first_of("abzx") == std::string::npos) {
    trimmed.push_back('q');
  }
  return trimmed;
}

Value RandomCell(DataType type, Rng* rng) {
  if (rng->NextBernoulli(0.15)) return Value::Null();
  switch (type) {
    case DataType::kInt64:
      return Value(rng->NextInt(-1000000, 1000000));
    case DataType::kDouble:
      if (rng->NextBernoulli(0.05)) {
        return Value(std::numeric_limits<double>::quiet_NaN());
      }
      return Value(rng->NextUniform(-1e6, 1e6));
    case DataType::kString:
      return Value(NastyStringCell(rng));
  }
  return Value::Null();
}

}  // namespace

Gen<Table> AnyTable(size_t max_rows, size_t max_cols) {
  return Gen<Table>(
      [max_rows, max_cols](Rng* rng) {
        size_t cols = 1 + rng->NextBounded(max_cols);
        size_t rows = 1 + rng->NextBounded(max_rows);
        static const DataType kTypes[] = {DataType::kInt64, DataType::kDouble,
                                          DataType::kString};
        TableBuilder builder;
        for (size_t c = 0; c < cols; ++c) {
          DataType type = kTypes[rng->NextBounded(3)];
          std::vector<Value> cells;
          cells.reserve(rows);
          for (size_t r = 0; r < rows; ++r) {
            cells.push_back(RandomCell(type, rng));
          }
          builder.AddValueColumn(StrFormat("c%zu", c), type, std::move(cells));
        }
        return builder.Build();
      },
      [](const Table& table) {
        std::vector<Table> candidates;
        size_t n = table.num_rows();
        // Remove row halves, then single rows.
        if (n >= 2) {
          std::vector<size_t> first_half, second_half;
          for (size_t i = 0; i < n / 2; ++i) first_half.push_back(i);
          for (size_t i = n / 2; i < n; ++i) second_half.push_back(i);
          candidates.push_back(table.SelectRows(first_half));
          candidates.push_back(table.SelectRows(second_half));
          const size_t kMaxSingle = 6;
          for (size_t i = 0; i < n && i < kMaxSingle; ++i) {
            std::vector<size_t> keep;
            for (size_t j = 0; j < n; ++j) {
              if (j != i) keep.push_back(j);
            }
            candidates.push_back(table.SelectRows(keep));
          }
        }
        // Remove one column (keep at least one).
        if (table.num_columns() > 1) {
          for (size_t drop = 0; drop < table.num_columns(); ++drop) {
            std::vector<std::string> keep;
            for (size_t c = 0; c < table.num_columns(); ++c) {
              if (c != drop) keep.push_back(table.schema().field(c).name);
            }
            candidates.push_back(table.SelectColumns(keep).value());
          }
        }
        return candidates;
      });
}

namespace {

/// One raw CSV cell, drawn from the taxonomy of things real files contain.
std::string RawCsvCell(Rng* rng) {
  switch (rng->NextBounded(8)) {
    case 0:
      return StrFormat("%lld", static_cast<long long>(rng->NextInt(-999, 999)));
    case 1:
      return StrFormat("%.3f", rng->NextUniform(-100.0, 100.0));
    case 2:
      return "";  // empty field -> null
    case 3:
      return "n/a";  // the null marker
    case 4:
      return rng->NextBernoulli(0.5) ? "nan" : "inf";
    case 5: {  // quoted field, possibly with embedded delimiter/quote/newline
      std::string inner = NastyStringCell(rng);
      std::string quoted = "\"";
      for (char c : inner) {
        if (c == '"') quoted += "\"\"";
        else quoted.push_back(c);
      }
      quoted.push_back('"');
      return quoted;
    }
    case 6:
      return std::string(StripWhitespace(NastyStringCell(rng)));
    default: {  // bare word
      std::string word;
      size_t length = 1 + rng->NextBounded(6);
      for (size_t i = 0; i < length; ++i) {
        word.push_back(static_cast<char>('a' + rng->NextBounded(26)));
      }
      return word;
    }
  }
}

}  // namespace

Gen<std::string> AnyCsvText(size_t max_rows, size_t max_cols) {
  return Gen<std::string>(
      [max_rows, max_cols](Rng* rng) {
        size_t cols = 1 + rng->NextBounded(max_cols);
        size_t rows = rng->NextBounded(max_rows + 1);
        bool crlf = rng->NextBernoulli(0.3);
        bool final_newline = rng->NextBernoulli(0.8);
        const char* ending = crlf ? "\r\n" : "\n";
        std::ostringstream os;
        for (size_t c = 0; c < cols; ++c) {
          if (c > 0) os << ',';
          os << "h" << c;
        }
        os << ending;
        for (size_t r = 0; r < rows; ++r) {
          size_t row_cols = cols;
          if (rng->NextBernoulli(0.1)) {  // ragged row
            row_cols = 1 + rng->NextBounded(max_cols + 2);
          }
          for (size_t c = 0; c < row_cols; ++c) {
            if (c > 0) os << ',';
            os << RawCsvCell(rng);
          }
          if (r + 1 < rows || final_newline) os << ending;
        }
        return os.str();
      },
      [](const std::string& text) {
        // Shrink by dropping physical lines. Splitting may cut through a
        // quoted region — fine: any byte string is valid reader input.
        std::vector<std::string> lines = SplitString(text, '\n');
        std::vector<std::string> candidates;
        for (std::vector<std::string>& smaller :
             ShrinkVector<std::string>(lines, nullptr, 1)) {
          candidates.push_back(JoinStrings(smaller, "\n"));
        }
        return candidates;
      });
}

std::string DescribeTable(const Table& table) { return WriteCsvString(table); }

std::string DescribeCsvText(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 16);
  for (char c : text) {
    switch (c) {
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default: escaped.push_back(c);
    }
  }
  return "csv bytes (escaped): \"" + escaped + "\"";
}

/// --- Estimator options ------------------------------------------------------

Gen<TmcShapleyOptions> AnyTmcOptions(size_t max_permutations) {
  return Gen<TmcShapleyOptions>(
      [max_permutations](Rng* rng) {
        TmcShapleyOptions options;
        options.num_permutations = 1 + rng->NextBounded(max_permutations);
        options.seed = rng->NextUint64() | 1;
        options.truncation_tolerance =
            rng->NextBernoulli(0.3) ? rng->NextUniform(0.01, 0.3) : 0.0;
        options.convergence_tolerance =
            rng->NextBernoulli(0.2) ? rng->NextUniform(0.02, 0.2) : 0.0;
        return options;
      },
      [](const TmcShapleyOptions& options) {
        std::vector<TmcShapleyOptions> candidates;
        for (size_t p : ShrinkIntegerToward<size_t>(
                 1, options.num_permutations)) {
          TmcShapleyOptions smaller = options;
          smaller.num_permutations = p;
          candidates.push_back(smaller);
        }
        if (options.truncation_tolerance != 0.0) {
          TmcShapleyOptions smaller = options;
          smaller.truncation_tolerance = 0.0;
          candidates.push_back(smaller);
        }
        if (options.convergence_tolerance != 0.0) {
          TmcShapleyOptions smaller = options;
          smaller.convergence_tolerance = 0.0;
          candidates.push_back(smaller);
        }
        return candidates;
      });
}

Gen<BanzhafOptions> AnyBanzhafOptions(size_t max_samples) {
  return Gen<BanzhafOptions>(
      [max_samples](Rng* rng) {
        BanzhafOptions options;
        options.num_samples = 1 + rng->NextBounded(max_samples);
        options.seed = rng->NextUint64() | 1;
        options.convergence_tolerance =
            rng->NextBernoulli(0.2) ? rng->NextUniform(0.02, 0.2) : 0.0;
        return options;
      },
      [](const BanzhafOptions& options) {
        std::vector<BanzhafOptions> candidates;
        for (size_t s : ShrinkIntegerToward<size_t>(1, options.num_samples)) {
          BanzhafOptions smaller = options;
          smaller.num_samples = s;
          candidates.push_back(smaller);
        }
        return candidates;
      });
}

Gen<BetaShapleyOptions> AnyBetaOptions(size_t max_samples_per_unit) {
  return Gen<BetaShapleyOptions>(
      [max_samples_per_unit](Rng* rng) {
        BetaShapleyOptions options;
        options.samples_per_unit = 1 + rng->NextBounded(max_samples_per_unit);
        options.seed = rng->NextUint64() | 1;
        options.alpha = rng->NextBernoulli(0.5) ? 1.0
                                                : rng->NextUniform(1.0, 16.0);
        options.beta = rng->NextBernoulli(0.7) ? 1.0
                                               : rng->NextUniform(1.0, 4.0);
        return options;
      },
      [](const BetaShapleyOptions& options) {
        std::vector<BetaShapleyOptions> candidates;
        for (size_t s :
             ShrinkIntegerToward<size_t>(1, options.samples_per_unit)) {
          BetaShapleyOptions smaller = options;
          smaller.samples_per_unit = s;
          candidates.push_back(smaller);
        }
        if (options.alpha != 1.0 || options.beta != 1.0) {
          BetaShapleyOptions smaller = options;
          smaller.alpha = 1.0;
          smaller.beta = 1.0;
          candidates.push_back(smaller);
        }
        return candidates;
      });
}

std::string DescribeTmcOptions(const TmcShapleyOptions& options) {
  return StrFormat(
      "TmcShapleyOptions{num_permutations=%zu seed=%llu truncation=%g "
      "convergence=%g}",
      options.num_permutations,
      static_cast<unsigned long long>(options.seed),
      options.truncation_tolerance, options.convergence_tolerance);
}

/// --- Error-injector mixes ---------------------------------------------------

Gen<ErrorMix> AnyErrorMix(double max_fraction) {
  return Gen<ErrorMix>(
      [max_fraction](Rng* rng) {
        ErrorMix mix;
        if (rng->NextBernoulli(0.7)) {
          mix.label_flip_fraction = rng->NextUniform(0.05, max_fraction);
        }
        if (rng->NextBernoulli(0.4)) {
          mix.noise_fraction = rng->NextUniform(0.05, max_fraction);
          mix.noise_scale = rng->NextUniform(0.5, 3.0);
        }
        if (rng->NextBernoulli(0.4)) {
          mix.outlier_fraction = rng->NextUniform(0.05, max_fraction);
          mix.outlier_shift = rng->NextUniform(2.0, 8.0);
        }
        return mix;
      },
      [](const ErrorMix& mix) {
        std::vector<ErrorMix> candidates;
        if (mix.label_flip_fraction != 0.0) {
          ErrorMix smaller = mix;
          smaller.label_flip_fraction = 0.0;
          candidates.push_back(smaller);
        }
        if (mix.noise_fraction != 0.0) {
          ErrorMix smaller = mix;
          smaller.noise_fraction = 0.0;
          smaller.noise_scale = 0.0;
          candidates.push_back(smaller);
        }
        if (mix.outlier_fraction != 0.0) {
          ErrorMix smaller = mix;
          smaller.outlier_fraction = 0.0;
          smaller.outlier_shift = 0.0;
          candidates.push_back(smaller);
        }
        return candidates;
      });
}

std::vector<size_t> ApplyErrorMix(MlDataset* data, const ErrorMix& mix,
                                  Rng* rng) {
  std::set<size_t> corrupted;
  if (mix.label_flip_fraction > 0.0) {
    for (size_t i : InjectLabelErrors(data, mix.label_flip_fraction, rng)) {
      corrupted.insert(i);
    }
  }
  if (mix.noise_fraction > 0.0) {
    for (size_t i :
         InjectFeatureNoise(data, mix.noise_fraction, mix.noise_scale, rng)) {
      corrupted.insert(i);
    }
  }
  if (mix.outlier_fraction > 0.0) {
    for (size_t i :
         InjectOutliers(data, mix.outlier_fraction, mix.outlier_shift, rng)) {
      corrupted.insert(i);
    }
  }
  return std::vector<size_t>(corrupted.begin(), corrupted.end());
}

std::string DescribeErrorMix(const ErrorMix& mix) {
  return StrFormat(
      "ErrorMix{label_flip=%g noise=%g@%g outliers=%g@%g}",
      mix.label_flip_fraction, mix.noise_fraction, mix.noise_scale,
      mix.outlier_fraction, mix.outlier_shift);
}

/// --- Pipeline operator chains -----------------------------------------------

Gen<PipelineScenario> AnyPipelineScenario(size_t max_rows, size_t max_features,
                                          size_t max_ops) {
  return Gen<PipelineScenario>(
      [max_rows, max_features, max_ops](Rng* rng) {
        PipelineScenario scenario;
        size_t rows = 12 + rng->NextBounded(max_rows - 11);
        size_t features = 1 + rng->NextBounded(max_features);
        TableBuilder builder;
        for (size_t j = 0; j < features; ++j) {
          std::vector<double> column;
          column.reserve(rows);
          for (size_t r = 0; r < rows; ++r) {
            column.push_back(rng->NextGaussian());
          }
          builder.AddDoubleColumn(StrFormat("f%zu", j), std::move(column));
        }
        std::vector<int64_t> labels;
        labels.reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          labels.push_back(rng->NextBernoulli(0.5) ? 1 : 0);
        }
        builder.AddInt64Column("y", std::move(labels));
        scenario.table = builder.Build();
        scenario.seed = rng->NextUint64() | 1;

        size_t num_ops = rng->NextBounded(max_ops + 1);
        size_t remaining = features;
        for (size_t o = 0; o < num_ops; ++o) {
          PipelineOp op;
          // Drop a column only while at least two features remain; always
          // reference columns by original ordinal among survivors.
          if (remaining > 1 && rng->NextBernoulli(0.3)) {
            op.kind = PipelineOp::Kind::kDropColumn;
            op.column = rng->NextBounded(features);
            --remaining;
          } else {
            op.kind = PipelineOp::Kind::kFilterThreshold;
            op.column = rng->NextBounded(features);
            // Features are standard normal; a threshold near the center
            // keeps a healthy fraction of rows per filter.
            op.threshold = rng->NextUniform(-0.6, 0.6);
            op.keep_above = rng->NextBernoulli(0.5);
          }
          scenario.ops.push_back(op);
        }
        return scenario;
      },
      [](const PipelineScenario& scenario) {
        std::vector<PipelineScenario> candidates;
        // Drop operators first (usually the biggest simplification).
        for (std::vector<PipelineOp>& fewer : ShrinkVector<PipelineOp>(
                 scenario.ops, nullptr, 0)) {
          PipelineScenario smaller = scenario;
          smaller.ops = std::move(fewer);
          candidates.push_back(std::move(smaller));
        }
        // Then shrink the table row count.
        size_t n = scenario.table.num_rows();
        if (n > 12) {
          std::vector<size_t> first_half;
          for (size_t i = 0; i < std::max<size_t>(n / 2, 12); ++i) {
            first_half.push_back(i);
          }
          PipelineScenario smaller = scenario;
          smaller.table = scenario.table.SelectRows(first_half);
          candidates.push_back(std::move(smaller));
        }
        return candidates;
      });
}

std::vector<std::string> SurvivingFeatureColumns(
    const PipelineScenario& scenario) {
  std::set<size_t> dropped;
  for (const PipelineOp& op : scenario.ops) {
    if (op.kind == PipelineOp::Kind::kDropColumn) dropped.insert(op.column);
  }
  std::vector<std::string> survivors;
  for (size_t c = 0; c + 1 < scenario.table.num_columns(); ++c) {
    if (dropped.count(c) == 0) {
      survivors.push_back(scenario.table.schema().field(c).name);
    }
  }
  if (survivors.empty()) {
    // Every feature was dropped (possible after shrinking); keep the first
    // so the pipeline still has one input feature.
    survivors.push_back(scenario.table.schema().field(0).name);
  }
  return survivors;
}

MlPipeline BuildScenarioPipeline(const PipelineScenario& scenario) {
  std::vector<std::string> survivors = SurvivingFeatureColumns(scenario);
  std::vector<PipelineOp> ops = scenario.ops;
  std::vector<std::string> feature_names;
  for (size_t c = 0; c + 1 < scenario.table.num_columns(); ++c) {
    feature_names.push_back(scenario.table.schema().field(c).name);
  }
  std::set<std::string> surviving_set(survivors.begin(), survivors.end());

  PlanBuilder builder = [ops, feature_names, survivors](
                            const std::vector<PlanNodePtr>& sources) {
    PlanNodePtr node = sources[0];
    for (const PipelineOp& op : ops) {
      if (op.kind != PipelineOp::Kind::kFilterThreshold) continue;
      std::string column = feature_names[op.column];
      double threshold = op.threshold;
      bool keep_above = op.keep_above;
      node = MakeFilter(
          node,
          StrFormat("%s %s %g", column.c_str(), keep_above ? ">" : "<=",
                    threshold),
          [column, threshold, keep_above](const RowView& row) {
            Result<Value> cell = row.Get(column);
            if (!cell.ok() || cell.value().is_null()) return false;
            double v = cell.value().AsNumeric();
            return keep_above ? v > threshold : v <= threshold;
          });
    }
    std::vector<std::string> projected = survivors;
    projected.push_back("y");
    return MakeProject(std::move(node), projected);
  };

  ColumnTransformer transformer;
  for (const std::string& column : survivors) {
    transformer.Add(column, std::make_unique<NumericEncoder>(false));
  }
  return MlPipeline({{"train", scenario.table}}, builder,
                    std::move(transformer), "y");
}

std::string DescribePipelineScenario(const PipelineScenario& scenario) {
  std::ostringstream os;
  os << "table.csv:\n" << WriteCsvString(scenario.table) << "ops:";
  if (scenario.ops.empty()) os << " (none)";
  for (const PipelineOp& op : scenario.ops) {
    if (op.kind == PipelineOp::Kind::kDropColumn) {
      os << StrFormat(" drop(f%zu)", op.column);
    } else {
      os << StrFormat(" filter(f%zu %s %g)", op.column,
                      op.keep_above ? ">" : "<=", op.threshold);
    }
  }
  os << StrFormat("\nseed: %llu\n",
                  static_cast<unsigned long long>(scenario.seed));
  return os.str();
}

}  // namespace prop
}  // namespace nde
