#ifndef NDE_PROPTEST_GEN_H_
#define NDE_PROPTEST_GEN_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace nde {
namespace prop {

/// A typed random-value generator with greedy shrinking, the core of the
/// property-testing harness (DESIGN.md §16).
///
/// A `Gen<T>` is a pair of pure functions:
///   - Sample(Rng*)  -> T: draws one value from the explicitly seeded stream
///     (so every generated case is replayable from its seed alone);
///   - Shrink(value) -> candidates: smaller values to try when `value` breaks
///     a property, ordered most-aggressive first. The check driver
///     (proptest/check.h) re-runs the property on each candidate and greedily
///     descends into the first one that still fails, so shrinkers only need
///     to propose candidates — they never decide which failure survives.
///
/// Shrinking contract: every candidate must be strictly "smaller" under some
/// well-founded measure (magnitude for numbers, length then element size for
/// vectors), so greedy descent terminates without a step budget doing the
/// real work. A Gen without a shrinker is legal; its counterexamples are
/// simply reported unshrunk.
template <typename T>
class Gen {
 public:
  using SampleFn = std::function<T(Rng*)>;
  using ShrinkFn = std::function<std::vector<T>(const T&)>;

  explicit Gen(SampleFn sample, ShrinkFn shrink = nullptr)
      : sample_(std::move(sample)), shrink_(std::move(shrink)) {
    NDE_CHECK(sample_ != nullptr);
  }

  T Sample(Rng* rng) const { return sample_(rng); }

  std::vector<T> Shrink(const T& value) const {
    if (shrink_ == nullptr) return {};
    return shrink_(value);
  }

  /// Same generator with a (replacement) shrinker attached.
  Gen<T> WithShrink(ShrinkFn shrink) const {
    return Gen<T>(sample_, std::move(shrink));
  }

  /// Transforms every sampled value. The mapped generator keeps shrinking
  /// when `inverse_free_shrink` is provided (a shrinker over U); plain Map
  /// drops shrinking because U-candidates cannot be pulled back through `f`.
  template <typename F>
  auto Map(F f) const -> Gen<decltype(f(std::declval<T>()))> {
    using U = decltype(f(std::declval<T>()));
    SampleFn sample = sample_;
    return Gen<U>([sample, f](Rng* rng) { return f(sample(rng)); });
  }

  /// Keeps sampling until `pred` holds (bounded; aborts the case budget on a
  /// pathological predicate rather than looping forever). Shrink candidates
  /// are filtered through the same predicate, so shrinking never escapes the
  /// generator's domain.
  Gen<T> Filter(std::function<bool(const T&)> pred, int max_tries = 64) const {
    SampleFn sample = sample_;
    ShrinkFn shrink = shrink_;
    return Gen<T>(
        [sample, pred, max_tries](Rng* rng) {
          for (int i = 0; i < max_tries; ++i) {
            T value = sample(rng);
            if (pred(value)) return value;
          }
          NDE_CHECK(false) << "prop::Gen::Filter: predicate rejected "
                           << max_tries << " consecutive samples";
          return sample(rng);  // Unreachable.
        },
        shrink == nullptr
            ? ShrinkFn(nullptr)
            : ShrinkFn([shrink, pred](const T& value) {
                std::vector<T> kept;
                for (T& candidate : shrink(value)) {
                  if (pred(candidate)) kept.push_back(std::move(candidate));
                }
                return kept;
              }));
  }

 private:
  SampleFn sample_;
  ShrinkFn shrink_;
};

/// --- Primitive generators ----------------------------------------------------

/// Always `value`; no shrinking (it is already minimal by fiat).
template <typename T>
Gen<T> Just(T value) {
  return Gen<T>([value](Rng*) { return value; });
}

/// Shrink candidates for an integer toward `origin`: origin itself first,
/// then successive halvings of the distance, then the adjacent value. Shared
/// by the integral generators so every integer in the library shrinks the
/// same way.
template <typename T>
std::vector<T> ShrinkIntegerToward(T origin, T value) {
  std::vector<T> candidates;
  if (value == origin) return candidates;
  candidates.push_back(origin);
  // Halve the distance; works for signed and unsigned alike because value
  // and origin are already ordered by the caller's range.
  T distance = value > origin ? value - origin : origin - value;
  for (T step = distance / 2; step > 0; step /= 2) {
    T candidate = value > origin ? static_cast<T>(origin + step)
                                 : static_cast<T>(origin - step);
    if (candidate != value && candidate != origin &&
        (candidates.empty() || candidate != candidates.back())) {
      candidates.push_back(candidate);
    }
  }
  T neighbor = value > origin ? static_cast<T>(value - 1)
                              : static_cast<T>(value + 1);
  if (neighbor != origin &&
      std::find(candidates.begin(), candidates.end(), neighbor) ==
          candidates.end()) {
    candidates.push_back(neighbor);
  }
  return candidates;
}

/// Uniform integer in [lo, hi], shrinking toward lo.
inline Gen<int64_t> IntInRange(int64_t lo, int64_t hi) {
  NDE_CHECK_LE(lo, hi);
  return Gen<int64_t>(
      [lo, hi](Rng* rng) { return rng->NextInt(lo, hi); },
      [lo](const int64_t& value) { return ShrinkIntegerToward(lo, value); });
}

/// Uniform size_t in [lo, hi], shrinking toward lo. The workhorse for counts
/// (rows, columns, permutations, coalition sizes).
inline Gen<size_t> SizeInRange(size_t lo, size_t hi) {
  NDE_CHECK_LE(lo, hi);
  return Gen<size_t>(
      [lo, hi](Rng* rng) { return lo + rng->NextBounded(hi - lo + 1); },
      [lo](const size_t& value) { return ShrinkIntegerToward(lo, value); });
}

/// Uniform double in [lo, hi). Shrinks toward lo through midpoints and the
/// nearest integer (integral doubles make counterexamples legible).
inline Gen<double> DoubleInRange(double lo, double hi) {
  NDE_CHECK(lo <= hi);
  return Gen<double>(
      [lo, hi](Rng* rng) { return rng->NextUniform(lo, hi); },
      [lo](const double& value) {
        std::vector<double> candidates;
        if (value == lo) return candidates;
        candidates.push_back(lo);
        double mid = lo + (value - lo) / 2.0;
        if (mid != value && mid != lo) candidates.push_back(mid);
        double rounded = static_cast<double>(static_cast<int64_t>(value));
        if (rounded != value && rounded >= lo &&
            std::find(candidates.begin(), candidates.end(), rounded) ==
                candidates.end()) {
          candidates.push_back(rounded);
        }
        return candidates;
      });
}

/// Bernoulli(p) boolean; true shrinks to false.
inline Gen<bool> BoolWithProbability(double p = 0.5) {
  return Gen<bool>([p](Rng* rng) { return rng->NextBernoulli(p); },
                   [](const bool& value) {
                     return value ? std::vector<bool>{false}
                                  : std::vector<bool>{};
                   });
}

/// Uniformly one of `items`; shrinks toward earlier list positions, so order
/// the list least-nasty first.
template <typename T>
Gen<T> ElementOf(std::vector<T> items) {
  NDE_CHECK(!items.empty());
  return Gen<T>(
      [items](Rng* rng) { return items[rng->NextBounded(items.size())]; },
      [items](const T& value) {
        std::vector<T> candidates;
        for (const T& item : items) {
          if (item == value) break;
          candidates.push_back(item);
        }
        return candidates;
      });
}

/// Shrink candidates for a vector: empty first, then each half removed, then
/// single elements removed (capped), then per-element shrinks via
/// `shrink_element` (capped). The cap bounds the greedy driver's fan-out per
/// round; the driver's repeated rounds still reach minimal counterexamples.
template <typename T>
std::vector<std::vector<T>> ShrinkVector(
    const std::vector<T>& value,
    const std::function<std::vector<T>(const T&)>& shrink_element,
    size_t min_size = 0) {
  std::vector<std::vector<T>> candidates;
  const size_t n = value.size();
  if (n > min_size) {
    if (min_size == 0) candidates.emplace_back();
    // Drop the first / second half.
    if (n >= 2 && n / 2 >= min_size) {
      candidates.emplace_back(value.begin() + static_cast<ptrdiff_t>(n / 2),
                              value.end());
      candidates.emplace_back(value.begin(),
                              value.begin() + static_cast<ptrdiff_t>(n / 2));
    }
    // Drop single elements, front-biased, capped.
    const size_t kMaxSingleRemovals = 8;
    for (size_t i = 0; i < n && i < kMaxSingleRemovals; ++i) {
      std::vector<T> smaller;
      smaller.reserve(n - 1);
      for (size_t j = 0; j < n; ++j) {
        if (j != i) smaller.push_back(value[j]);
      }
      if (smaller.size() >= min_size) candidates.push_back(std::move(smaller));
    }
  }
  if (shrink_element != nullptr) {
    const size_t kMaxElementShrinks = 16;
    size_t emitted = 0;
    for (size_t i = 0; i < n && emitted < kMaxElementShrinks; ++i) {
      for (T& replacement : shrink_element(value[i])) {
        std::vector<T> mutated = value;
        mutated[i] = std::move(replacement);
        candidates.push_back(std::move(mutated));
        if (++emitted >= kMaxElementShrinks) break;
      }
    }
  }
  return candidates;
}

/// Vector of `size ~ size_gen` elements drawn from `element`. Shrinks by
/// removing chunks/elements first, then shrinking individual elements.
template <typename T>
Gen<std::vector<T>> VectorOf(Gen<size_t> size_gen, Gen<T> element,
                             size_t min_size = 0) {
  return Gen<std::vector<T>>(
      [size_gen, element](Rng* rng) {
        size_t n = size_gen.Sample(rng);
        std::vector<T> values;
        values.reserve(n);
        for (size_t i = 0; i < n; ++i) values.push_back(element.Sample(rng));
        return values;
      },
      [element, min_size](const std::vector<T>& value) {
        return ShrinkVector<T>(
            value, [element](const T& v) { return element.Shrink(v); },
            min_size);
      });
}

}  // namespace prop
}  // namespace nde

#endif  // NDE_PROPTEST_GEN_H_
