#ifndef NDE_LINALG_MATRIX_H_
#define NDE_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace nde {

/// Dense row-major matrix of doubles. The workhorse numeric container for
/// feature matrices, model parameters and intermediate products.
///
/// Kept deliberately simple: contiguous storage, bounds-checked element
/// access via NDE_CHECK in debug-friendly builds, and explicit methods
/// instead of expression templates so that generated code stays predictable.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    NDE_CHECK_LT(r, rows_);
    NDE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    NDE_CHECK_LT(r, rows_);
    NDE_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for inner loops.
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  double* RowPtr(size_t r) {
    NDE_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    NDE_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Row `r` as a non-owning span (pointer + length): the no-copy alternative
  /// to Row() for hot loops. Invalidated by any operation that reallocates the
  /// matrix (AppendRows, assignment, ...).
  std::span<const double> RowSpan(size_t r) const {
    NDE_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of row `r` as a vector.
  std::vector<double> Row(size_t r) const;

  /// Copy of column `c` as a vector.
  std::vector<double> Col(size_t c) const;

  /// Overwrites row `r`. Precondition: values.size() == cols().
  void SetRow(size_t r, const std::vector<double>& values);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix product this * other. Precondition: cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// Matrix-vector product this * v. Precondition: v.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// Transposed matrix-vector product this^T * v.
  /// Precondition: v.size() == rows().
  std::vector<double> TransposedMatVec(const std::vector<double>& v) const;

  /// Elementwise in-place operations.
  void AddInPlace(const Matrix& other);
  void ScaleInPlace(double factor);

  /// Returns the submatrix consisting of the given rows, in order.
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

  /// Appends the rows of `other`. Precondition: other.cols() == cols() (or
  /// this matrix is empty, in which case it adopts other's width).
  void AppendRows(const Matrix& other);

  /// Reserves storage for `rows` rows so a sequence of AppendRows up to that
  /// size never reallocates. Does not change the matrix's shape or contents.
  void Reserve(size_t rows) { data_.reserve(rows * cols_); }

  /// Horizontal concatenation [this | other].
  /// Precondition: other.rows() == rows().
  Matrix ConcatCols(const Matrix& other) const;

  /// Maximum absolute difference with `other` (matching shapes required).
  double MaxAbsDiff(const Matrix& other) const;

  /// Raw storage access (row-major).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Compact human-readable rendering for debugging and test failures.
  std::string DebugString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Free-function vector helpers used throughout the library.

/// Dot product. Precondition: a.size() == b.size().
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& v);

/// Squared Euclidean distance. Precondition: a.size() == b.size().
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// y += alpha * x. Precondition: x.size() == y->size().
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// Elementwise scale in place.
void Scale(double alpha, std::vector<double>* v);

}  // namespace nde

#endif  // NDE_LINALG_MATRIX_H_
