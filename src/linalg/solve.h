#ifndef NDE_LINALG_SOLVE_H_
#define NDE_LINALG_SOLVE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace nde {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor L, or InvalidArgument when A is not
/// square / FailedPrecondition when A is not (numerically) positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Precondition: b.size() == a.rows().
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Solves A X = B column-by-column for symmetric positive-definite A.
Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b);

/// Inverse of a symmetric positive-definite matrix via Cholesky. Intended for
/// small systems (d x d Hessians in influence functions), not large n.
Result<Matrix> SpdInverse(const Matrix& a);

/// Solves the ridge-regularized least squares problem
///   min_w ||X w - y||^2 + lambda ||w||^2
/// via the normal equations (X^T X + lambda I) w = X^T y.
/// `lambda` must be >= 0; lambda > 0 guarantees a unique solution.
Result<std::vector<double>> RidgeSolve(const Matrix& x,
                                       const std::vector<double>& y,
                                       double lambda);

}  // namespace nde

#endif  // NDE_LINALG_SOLVE_H_
