#include "linalg/solve.h"

#include <cmath>

#include "common/string_util.h"

namespace nde {

namespace {

/// Forward substitution: solves L y = b for lower-triangular L.
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  size_t n = l.rows();
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    y[i] = acc / l(i, i);
  }
  return y;
}

/// Backward substitution: solves L^T x = y for lower-triangular L.
std::vector<double> BackwardSubstituteTransposed(const Matrix& l,
                                                 const std::vector<double>& y) {
  size_t n = l.rows();
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * x[j];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

}  // namespace

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("Cholesky requires a square matrix, got %zux%zu", a.rows(),
                  a.cols()));
  }
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0 || !std::isfinite(acc)) {
          return Status::FailedPrecondition(StrFormat(
              "matrix is not positive definite (pivot %zu = %g)", i, acc));
        }
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return l;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument(
        StrFormat("rhs size %zu does not match matrix rows %zu", b.size(),
                  a.rows()));
  }
  NDE_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  std::vector<double> y = ForwardSubstitute(l, b);
  return BackwardSubstituteTransposed(l, y);
}

Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (b.rows() != a.rows()) {
    return Status::InvalidArgument(
        StrFormat("rhs rows %zu do not match matrix rows %zu", b.rows(),
                  a.rows()));
  }
  NDE_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    std::vector<double> col = b.Col(c);
    std::vector<double> y = ForwardSubstitute(l, col);
    std::vector<double> sol = BackwardSubstituteTransposed(l, y);
    for (size_t r = 0; r < x.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

Result<Matrix> SpdInverse(const Matrix& a) {
  return CholeskySolveMatrix(a, Matrix::Identity(a.rows()));
}

Result<std::vector<double>> RidgeSolve(const Matrix& x,
                                       const std::vector<double>& y,
                                       double lambda) {
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        StrFormat("label count %zu does not match row count %zu", y.size(),
                  x.rows()));
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  size_t d = x.cols();
  // Gram matrix X^T X + lambda I.
  Matrix gram(d, d);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      double xi = row[i];
      if (xi == 0.0) continue;
      for (size_t j = 0; j < d; ++j) gram(i, j) += xi * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;
  std::vector<double> xty = x.TransposedMatVec(y);
  return CholeskySolve(gram, xty);
}

}  // namespace nde
