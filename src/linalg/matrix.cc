#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nde {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    NDE_CHECK_EQ(rows[r].size(), m.cols_) << "ragged row " << r;
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(r));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  NDE_CHECK_LT(r, rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  NDE_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  NDE_CHECK_LT(r, rows_);
  NDE_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), RowPtr(r));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = row[c];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  NDE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams over contiguous rows of both operands.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  NDE_CHECK_EQ(v.size(), cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::TransposedMatVec(const std::vector<double>& v) const {
  NDE_CHECK_EQ(v.size(), rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double scale = v[r];
    if (scale == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += scale * row[c];
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  NDE_CHECK_EQ(rows_, other.rows_);
  NDE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::ScaleInPlace(double factor) {
  for (double& value : data_) value *= factor;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    NDE_CHECK_LT(row_indices[i], rows_);
    std::copy(RowPtr(row_indices[i]), RowPtr(row_indices[i]) + cols_,
              out.RowPtr(i));
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  NDE_CHECK_EQ(cols_, other.cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  NDE_CHECK_EQ(rows_, other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(RowPtr(r), RowPtr(r) + cols_, out.RowPtr(r));
    std::copy(other.RowPtr(r), other.RowPtr(r) + other.cols_,
              out.RowPtr(r) + cols_);
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  NDE_CHECK_EQ(rows_, other.rows_);
  NDE_CHECK_EQ(cols_, other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

std::string Matrix::DebugString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")";
  size_t show_rows = std::min(rows_, max_rows);
  size_t show_cols = std::min(cols_, max_cols);
  for (size_t r = 0; r < show_rows; ++r) {
    os << "\n  [";
    for (size_t c = 0; c < show_cols; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (show_cols < cols_) os << ", ...";
    os << "]";
  }
  if (show_rows < rows_) os << "\n  ...";
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  NDE_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  NDE_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  NDE_CHECK(y != nullptr);
  NDE_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* v) {
  NDE_CHECK(v != nullptr);
  for (double& value : *v) value *= alpha;
}

}  // namespace nde
