#ifndef NDE_PIPELINE_PIPELINE_H_
#define NDE_PIPELINE_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "pipeline/encoders.h"
#include "pipeline/plan.h"

namespace nde {

/// Everything the preprocessing pipeline produces for model training:
/// encoded features, labels, the relational output table they came from, the
/// fitted transformer, and per-row provenance back to the source tables.
struct PipelineOutput {
  Matrix features;
  std::vector<int> labels;
  std::vector<RowProvenance> provenance;
  Table processed;             ///< relational output before encoding
  ColumnTransformer encoders;  ///< fitted copy (usable on validation data)

  size_t size() const { return labels.size(); }

  /// Features + labels as an MlDataset (provenance dropped).
  MlDataset ToDataset() const;
};

/// A named source table registered with a pipeline; its position in the
/// pipeline's source list is its provenance `table_id`.
struct NamedTable {
  std::string name;
  Table table;
};

/// Builds the relational plan from one already-created source node per
/// registered table (same order). Builders must use every source at most
/// once along any path so that row provenance stays a monomial.
using PlanBuilder =
    std::function<PlanNodePtr(const std::vector<PlanNodePtr>& sources)>;

/// An end-to-end preprocessing pipeline: source tables -> relational plan ->
/// feature encoding -> (features, labels) with full row provenance. This is
/// the C++ analogue of the Figure 3 `pipeline(train_df, jobdetail_df,
/// social_df)` function plus `nde.with_provenance(...)`.
class MlPipeline {
 public:
  /// `label_column` must be an int64 column of the plan output with
  /// non-negative values.
  MlPipeline(std::vector<NamedTable> sources, PlanBuilder builder,
             ColumnTransformer transformer, std::string label_column);

  /// Executes the full pipeline: plan, then fit+transform the encoders.
  Result<PipelineOutput> Run() const;

  /// Executes the pipeline over an externally built plan (normally one from
  /// BuildPlan()). Useful when the caller needs the plan object itself, e.g.
  /// to render a PlanProfiler's per-operator timings after the run.
  Result<PipelineOutput> Execute(const PlanNodePtr& plan) const;

  /// Ground-truth removal semantics: re-executes the pipeline with the given
  /// source rows deleted (encoders are *refit* on the reduced data).
  /// Provenance row ids still refer to the original tables.
  Result<PipelineOutput> RunWithout(const std::vector<SourceRef>& removed) const;

  /// Fast what-if removal: drops the rows of `output` whose provenance
  /// intersects `removed`, keeping the already-fitted encoders. Exact
  /// equivalent of RunWithout when `output.encoders.is_row_local()`; an
  /// approximation otherwise (fit statistics would shift slightly).
  static PipelineOutput RemoveByProvenance(const PipelineOutput& output,
                                           const std::vector<SourceRef>& removed);

  /// The relational plan over the current sources (for printing/inspection).
  PlanNodePtr BuildPlan() const;

  /// Registered source tables, index == provenance table_id.
  const std::vector<NamedTable>& sources() const { return sources_; }

  /// The plan builder and encoder configuration (for constructing variant
  /// pipelines, e.g. in what-if analyses).
  const PlanBuilder& builder() const { return builder_; }
  const ColumnTransformer& transformer() const { return transformer_; }

  const std::string& label_column() const { return label_column_; }

 private:
  std::vector<NamedTable> sources_;
  PlanBuilder builder_;
  ColumnTransformer transformer_;
  std::string label_column_;
};

/// Drops rows whose provenance intersects `removed_keys` without touching
/// encoders. Shared helper for the plan layer.
PlanNodePtr MakeProvenanceFilter(PlanNodePtr input,
                                 std::unordered_set<uint64_t> removed_keys);

}  // namespace nde

#endif  // NDE_PIPELINE_PIPELINE_H_
