#include "pipeline/encoders.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "telemetry/telemetry.h"

namespace nde {

NumericEncoder::NumericEncoder(bool standardize) : standardize_(standardize) {}

Status NumericEncoder::Fit(const std::vector<Value>& column) {
  double total = 0.0;
  size_t count = 0;
  for (const Value& v : column) {
    if (v.is_null()) continue;
    if (v.is_string()) {
      return Status::InvalidArgument("NumericEncoder requires numeric cells");
    }
    total += v.AsNumeric();
    ++count;
  }
  if (count == 0) {
    // An all-null numeric column has no mean to impute with; fitting it
    // silently would make Transform emit a fabricated constant 0 feature.
    return Status::InvalidArgument(
        "NumericEncoder fitted on all-null column");
  }
  mean_ = count > 0 ? total / static_cast<double>(count) : 0.0;
  double var = 0.0;
  for (const Value& v : column) {
    if (v.is_null()) continue;
    double diff = v.AsNumeric() - mean_;
    var += diff * diff;
  }
  double sd = count > 0 ? std::sqrt(var / static_cast<double>(count)) : 1.0;
  stddev_ = sd > 1e-12 ? sd : 1.0;
  fitted_ = true;
  return Status::OK();
}

void NumericEncoder::Transform(const Value& cell, double* out) const {
  NDE_CHECK(fitted_);
  double v = cell.is_null() ? mean_ : cell.AsNumeric();
  out[0] = standardize_ ? (v - mean_) / stddev_ : v;
}

std::unique_ptr<FeatureEncoder> NumericEncoder::Clone() const {
  auto clone = std::make_unique<NumericEncoder>(standardize_);
  *clone = *this;
  return clone;
}

OneHotEncoder::OneHotEncoder(bool impute_most_frequent)
    : impute_most_frequent_(impute_most_frequent) {}

Status OneHotEncoder::Fit(const std::vector<Value>& column) {
  categories_.clear();
  index_.clear();
  std::unordered_map<Value, size_t, ValueHash> counts;
  for (const Value& v : column) {
    if (v.is_null()) continue;
    ++counts[v];
  }
  if (counts.empty()) {
    return Status::InvalidArgument("OneHotEncoder fitted on all-null column");
  }
  // Categories in sorted order: refitting on a subset that preserves the
  // category set yields an identical encoding, which keeps what-if removal
  // comparisons meaningful.
  for (const auto& [value, count] : counts) {
    (void)count;
    categories_.push_back(value);
  }
  std::sort(categories_.begin(), categories_.end());
  for (size_t c = 0; c < categories_.size(); ++c) index_[categories_[c]] = c;
  most_frequent_ = 0;
  size_t best_count = 0;
  for (size_t c = 0; c < categories_.size(); ++c) {
    size_t count = counts[categories_[c]];
    if (count > best_count) {
      best_count = count;
      most_frequent_ = c;
    }
  }
  fitted_ = true;
  return Status::OK();
}

void OneHotEncoder::Transform(const Value& cell, double* out) const {
  NDE_CHECK(fitted_);
  std::fill(out, out + categories_.size(), 0.0);
  if (cell.is_null()) {
    if (impute_most_frequent_) out[most_frequent_] = 1.0;
    return;
  }
  auto it = index_.find(cell);
  if (it != index_.end()) out[it->second] = 1.0;
}

std::unique_ptr<FeatureEncoder> OneHotEncoder::Clone() const {
  auto clone = std::make_unique<OneHotEncoder>(impute_most_frequent_);
  *clone = *this;
  return clone;
}

HashingVectorizer::HashingVectorizer(size_t num_buckets)
    : num_buckets_(num_buckets) {
  NDE_CHECK_GE(num_buckets, 1u);
}

Status HashingVectorizer::Fit(const std::vector<Value>& column) {
  (void)column;  // Stateless: hashing needs no statistics.
  return Status::OK();
}

void HashingVectorizer::Transform(const Value& cell, double* out) const {
  std::fill(out, out + num_buckets_, 0.0);
  if (cell.is_null()) return;
  NDE_CHECK(cell.is_string()) << "HashingVectorizer requires string cells";
  // Whitespace tokenization with FNV-1a token hashing; the hash's low bit
  // picks the sign (feature hashing trick) to reduce bucket-collision bias.
  const std::string& text = cell.as_string();
  size_t start = 0;
  while (start < text.size()) {
    while (start < text.size() && text[start] == ' ') ++start;
    size_t end = start;
    while (end < text.size() && text[end] != ' ') ++end;
    if (end > start) {
      uint64_t h = 1469598103934665603ULL;
      for (size_t i = start; i < end; ++i) {
        h ^= static_cast<unsigned char>(text[i]);
        h *= 1099511628211ULL;
      }
      double sign = (h & 1) ? 1.0 : -1.0;
      out[(h >> 1) % num_buckets_] += sign;
    }
    start = end;
  }
  double norm = 0.0;
  for (size_t i = 0; i < num_buckets_; ++i) norm += out[i] * out[i];
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (size_t i = 0; i < num_buckets_; ++i) out[i] /= norm;
  }
}

std::unique_ptr<FeatureEncoder> HashingVectorizer::Clone() const {
  return std::make_unique<HashingVectorizer>(num_buckets_);
}

Status NotNullIndicatorEncoder::Fit(const std::vector<Value>& column) {
  (void)column;
  return Status::OK();
}

void NotNullIndicatorEncoder::Transform(const Value& cell, double* out) const {
  out[0] = cell.is_null() ? 0.0 : 1.0;
}

std::unique_ptr<FeatureEncoder> NotNullIndicatorEncoder::Clone() const {
  return std::make_unique<NotNullIndicatorEncoder>();
}

ColumnTransformer::ColumnTransformer(const ColumnTransformer& other) {
  *this = other;
}

ColumnTransformer& ColumnTransformer::operator=(const ColumnTransformer& other) {
  if (this == &other) return *this;
  entries_.clear();
  entries_.reserve(other.entries_.size());
  for (const Entry& e : other.entries_) {
    entries_.push_back(Entry{e.column, e.encoder->Clone(), e.weight});
  }
  fitted_ = other.fitted_;
  return *this;
}

void ColumnTransformer::Add(std::string column,
                            std::unique_ptr<FeatureEncoder> encoder,
                            double weight) {
  NDE_CHECK(encoder != nullptr);
  NDE_CHECK_GT(weight, 0.0);
  entries_.push_back(Entry{std::move(column), std::move(encoder), weight});
  fitted_ = false;
}

Status ColumnTransformer::Fit(const Table& table) {
  if (entries_.empty()) {
    return Status::FailedPrecondition("ColumnTransformer has no encoders");
  }
  NDE_FAILPOINT("encoder.fit");
  NDE_TRACE_SPAN_VAR(span, "ColumnTransformer::Fit", "encoder");
  NDE_SPAN_ARG(span, "rows", static_cast<int64_t>(table.num_rows()));
  for (Entry& e : entries_) {
    NDE_ASSIGN_OR_RETURN(const std::vector<Value>* column,
                         table.ColumnByName(e.column));
    NDE_TRACE_SPAN_VAR(fit_span,
                       telemetry::Enabled()
                           ? StrFormat("fit %s(%s)", e.encoder->name().c_str(),
                                       e.column.c_str())
                           : std::string(),
                       "encoder");
    NDE_RETURN_IF_ERROR(e.encoder->Fit(*column));
    NDE_METRIC_RECORD("encoder.fit_ms", fit_span.ElapsedMs());
  }
  NDE_METRIC_COUNT("encoder.fits", 1);
  fitted_ = true;
  return Status::OK();
}

Result<Matrix> ColumnTransformer::Transform(const Table& table) const {
  if (!fitted_) {
    return Status::FailedPrecondition("ColumnTransformer is not fitted");
  }
  NDE_FAILPOINT("encoder.transform");
  NDE_TRACE_SPAN_VAR(span, "ColumnTransformer::Transform", "encoder");
  NDE_SPAN_ARG(span, "rows", static_cast<int64_t>(table.num_rows()));
  size_t width = num_features();
  Matrix out(table.num_rows(), width);
  size_t offset = 0;
  for (const Entry& e : entries_) {
    NDE_ASSIGN_OR_RETURN(const std::vector<Value>* column,
                         table.ColumnByName(e.column));
    NDE_TRACE_SPAN_VAR(col_span,
                       telemetry::Enabled()
                           ? StrFormat("transform %s(%s)",
                                       e.encoder->name().c_str(),
                                       e.column.c_str())
                           : std::string(),
                       "encoder");
    size_t block = e.encoder->num_features();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      double* cells = out.RowPtr(r) + offset;
      e.encoder->Transform((*column)[r], cells);
      if (e.weight != 1.0) {
        for (size_t j = 0; j < block; ++j) cells[j] *= e.weight;
      }
    }
    offset += block;
    NDE_METRIC_RECORD("encoder.transform_ms", col_span.ElapsedMs());
  }
  NDE_METRIC_COUNT("encoder.transforms", 1);
  NDE_METRIC_COUNT("encoder.transform_rows", table.num_rows());
  return out;
}

Result<Matrix> ColumnTransformer::FitTransform(const Table& table) {
  NDE_RETURN_IF_ERROR(Fit(table));
  return Transform(table);
}

size_t ColumnTransformer::num_features() const {
  NDE_CHECK(fitted_);
  size_t total = 0;
  for (const Entry& e : entries_) total += e.encoder->num_features();
  return total;
}

bool ColumnTransformer::is_row_local() const {
  for (const Entry& e : entries_) {
    if (!e.encoder->is_row_local()) return false;
  }
  return true;
}

Result<ColumnTransformer> MakeAutoTransformer(
    const Table& table, const std::vector<std::string>& exclude,
    size_t max_onehot_cardinality, size_t text_hash_buckets) {
  ColumnTransformer transformer;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& field = table.schema().field(c);
    if (std::find(exclude.begin(), exclude.end(), field.name) !=
        exclude.end()) {
      continue;
    }
    if (field.type == DataType::kDouble || field.type == DataType::kInt64) {
      if (table.CountNulls(c) == table.num_rows()) continue;  // All null.
      transformer.Add(field.name, std::make_unique<NumericEncoder>());
      continue;
    }
    // String column: one-hot when low-cardinality, hashed text otherwise.
    std::unordered_map<Value, size_t, ValueHash> distinct;
    for (const Value& v : table.column(c)) {
      if (!v.is_null()) ++distinct[v];
    }
    if (distinct.empty()) continue;
    if (distinct.size() <= max_onehot_cardinality) {
      transformer.Add(field.name, std::make_unique<OneHotEncoder>());
    } else {
      transformer.Add(field.name,
                      std::make_unique<HashingVectorizer>(text_hash_buckets));
    }
  }
  // Fit eagerly: validates that at least one encodable column exists and
  // returns a ready-to-Transform transformer.
  NDE_RETURN_IF_ERROR(transformer.Fit(table));
  return transformer;
}

std::string ColumnTransformer::DebugString() const {
  std::vector<std::string> parts;
  parts.reserve(entries_.size());
  for (const Entry& e : entries_) {
    std::string part = e.column + " -> " + e.encoder->name();
    if (e.weight != 1.0) part += StrFormat(" (x%g)", e.weight);
    parts.push_back(std::move(part));
  }
  return JoinStrings(parts, "; ");
}

}  // namespace nde
