#ifndef NDE_PIPELINE_PROVENANCE_H_
#define NDE_PIPELINE_PROVENANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace nde {

/// Identity of one row in one registered source table.
struct SourceRef {
  int32_t table_id = 0;
  uint32_t row_id = 0;

  friend bool operator==(const SourceRef& a, const SourceRef& b) {
    return a.table_id == b.table_id && a.row_id == b.row_id;
  }
  friend bool operator<(const SourceRef& a, const SourceRef& b) {
    if (a.table_id != b.table_id) return a.table_id < b.table_id;
    return a.row_id < b.row_id;
  }

  /// Packs (table_id, row_id) into one 64-bit key.
  uint64_t Key() const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(table_id)) << 32) |
           row_id;
  }

  std::string ToString() const;
};

struct SourceRefHash {
  size_t operator()(const SourceRef& ref) const {
    return std::hash<uint64_t>{}(ref.Key());
  }
};

/// Why-provenance of one derived row: the conjunction (monomial) of source
/// rows it was derived from. With our operator set (map/filter/project/join)
/// every output row is a join of at most one row per source table, so the
/// provenance polynomial of a row is a single monomial — exactly the setting
/// exploited by Datascope-style pipeline-aware importance.
///
/// Refs are kept sorted and deduplicated.
class RowProvenance {
 public:
  RowProvenance() = default;
  explicit RowProvenance(SourceRef ref) : refs_{ref} {}

  const std::vector<SourceRef>& refs() const { return refs_; }
  bool empty() const { return refs_.empty(); }
  size_t size() const { return refs_.size(); }

  /// Adds one source ref, keeping the set sorted and unique.
  void Add(SourceRef ref);

  /// Monomial product: union of the two ref sets (join semantics).
  static RowProvenance Merge(const RowProvenance& a, const RowProvenance& b);

  /// True when any ref belongs to `table_id`.
  bool DependsOnTable(int32_t table_id) const;

  /// The ref from `table_id` if present (at most one for well-formed plans
  /// that join each source once); refs are scanned in order.
  const SourceRef* FindTableRef(int32_t table_id) const;

  /// True when this row depends on any ref in `removed`.
  bool IntersectsKeys(const std::unordered_set<uint64_t>& removed_keys) const;

  std::string ToString() const;

  friend bool operator==(const RowProvenance& a, const RowProvenance& b) {
    return a.refs_ == b.refs_;
  }

 private:
  std::vector<SourceRef> refs_;
};

/// Builds the packed-key set for a list of refs (helper for removal tests).
std::unordered_set<uint64_t> MakeKeySet(const std::vector<SourceRef>& refs);

}  // namespace nde

#endif  // NDE_PIPELINE_PROVENANCE_H_
