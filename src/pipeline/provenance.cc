#include "pipeline/provenance.h"

#include <algorithm>

#include "common/string_util.h"

namespace nde {

std::string SourceRef::ToString() const {
  return StrFormat("t%d/r%u", table_id, row_id);
}

void RowProvenance::Add(SourceRef ref) {
  auto pos = std::lower_bound(refs_.begin(), refs_.end(), ref);
  if (pos != refs_.end() && *pos == ref) return;
  refs_.insert(pos, ref);
}

RowProvenance RowProvenance::Merge(const RowProvenance& a,
                                   const RowProvenance& b) {
  RowProvenance out;
  out.refs_.resize(a.refs_.size() + b.refs_.size());
  auto end = std::set_union(a.refs_.begin(), a.refs_.end(), b.refs_.begin(),
                            b.refs_.end(), out.refs_.begin());
  out.refs_.resize(static_cast<size_t>(end - out.refs_.begin()));
  return out;
}

bool RowProvenance::DependsOnTable(int32_t table_id) const {
  return FindTableRef(table_id) != nullptr;
}

const SourceRef* RowProvenance::FindTableRef(int32_t table_id) const {
  for (const SourceRef& ref : refs_) {
    if (ref.table_id == table_id) return &ref;
  }
  return nullptr;
}

bool RowProvenance::IntersectsKeys(
    const std::unordered_set<uint64_t>& removed_keys) const {
  for (const SourceRef& ref : refs_) {
    if (removed_keys.find(ref.Key()) != removed_keys.end()) return true;
  }
  return false;
}

std::string RowProvenance::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(refs_.size());
  for (const SourceRef& ref : refs_) parts.push_back(ref.ToString());
  return "{" + JoinStrings(parts, " * ") + "}";
}

std::unordered_set<uint64_t> MakeKeySet(const std::vector<SourceRef>& refs) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(refs.size() * 2);
  for (const SourceRef& ref : refs) keys.insert(ref.Key());
  return keys;
}

}  // namespace nde
