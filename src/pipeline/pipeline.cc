#include "pipeline/pipeline.h"

#include <utility>

#include "common/log.h"
#include "common/string_util.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

/// Plan node dropping rows whose provenance intersects a removed-key set.
/// Implemented at the plan layer (not as a Filter) because predicates see
/// only cell values, not provenance.
class ProvenanceFilterNode : public PlanNode {
 public:
  ProvenanceFilterNode(PlanNodePtr input,
                       std::unordered_set<uint64_t> removed_keys)
      : input_(std::move(input)), removed_keys_(std::move(removed_keys)) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    NDE_ASSIGN_OR_RETURN(AnnotatedTable in, input_->Execute());
    std::vector<size_t> kept;
    kept.reserve(in.table.num_rows());
    for (size_t r = 0; r < in.table.num_rows(); ++r) {
      if (!in.provenance[r].IntersectsKeys(removed_keys_)) kept.push_back(r);
    }
    AnnotatedTable out;
    out.table = in.table.SelectRows(kept);
    out.provenance.reserve(kept.size());
    for (size_t r : kept) out.provenance.push_back(std::move(in.provenance[r]));
    return out;
  }

  std::string label() const override {
    return StrFormat("ProvenanceFilter(-%zu source rows)",
                     removed_keys_.size());
  }

  std::vector<const PlanNode*> children() const override {
    return {input_.get()};
  }

 private:
  PlanNodePtr input_;
  std::unordered_set<uint64_t> removed_keys_;
};

}  // namespace

PlanNodePtr MakeProvenanceFilter(PlanNodePtr input,
                                 std::unordered_set<uint64_t> removed_keys) {
  NDE_CHECK(input != nullptr);
  return std::make_shared<ProvenanceFilterNode>(std::move(input),
                                                std::move(removed_keys));
}

MlDataset PipelineOutput::ToDataset() const {
  MlDataset data;
  data.features = features;
  data.labels = labels;
  return data;
}

MlPipeline::MlPipeline(std::vector<NamedTable> sources, PlanBuilder builder,
                       ColumnTransformer transformer, std::string label_column)
    : sources_(std::move(sources)),
      builder_(std::move(builder)),
      transformer_(std::move(transformer)),
      label_column_(std::move(label_column)) {
  NDE_CHECK(!sources_.empty()) << "pipeline needs at least one source";
  NDE_CHECK(builder_ != nullptr);
}

PlanNodePtr MlPipeline::BuildPlan() const {
  std::vector<PlanNodePtr> source_nodes;
  source_nodes.reserve(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    source_nodes.push_back(MakeSource(static_cast<int32_t>(i),
                                      sources_[i].name, sources_[i].table));
  }
  return builder_(source_nodes);
}

Result<PipelineOutput> MlPipeline::Execute(const PlanNodePtr& plan) const {
  if (plan == nullptr) {
    return Status::InvalidArgument("plan builder returned null");
  }
  NDE_TRACE_SPAN_VAR(span, "MlPipeline::Execute", "pipeline");
  NDE_ASSIGN_OR_RETURN(AnnotatedTable annotated, plan->Execute());
  NDE_RETURN_IF_ERROR(annotated.Validate());

  // Labels.
  NDE_ASSIGN_OR_RETURN(size_t label_col,
                       annotated.table.schema().FieldIndex(label_column_));
  if (annotated.table.schema().field(label_col).type != DataType::kInt64) {
    return Status::InvalidArgument(
        StrFormat("label column '%s' must be int64", label_column_.c_str()));
  }
  PipelineOutput out;
  out.labels.reserve(annotated.table.num_rows());
  for (size_t r = 0; r < annotated.table.num_rows(); ++r) {
    const Value& v = annotated.table.At(r, label_col);
    if (v.is_null()) {
      return Status::InvalidArgument(
          StrFormat("null label in row %zu of pipeline output", r));
    }
    if (v.as_int64() < 0) {
      return Status::InvalidArgument("labels must be non-negative");
    }
    out.labels.push_back(static_cast<int>(v.as_int64()));
  }

  // Feature encoding (fit on the pipeline output, as in fit_transform).
  ColumnTransformer encoders = transformer_;  // Deep copy of configuration.
  NDE_ASSIGN_OR_RETURN(out.features, encoders.FitTransform(annotated.table));
  out.encoders = std::move(encoders);
  out.processed = std::move(annotated.table);
  out.provenance = std::move(annotated.provenance);
  NDE_SPAN_ARG(span, "output_rows", static_cast<int64_t>(out.size()));
  NDE_METRIC_COUNT("pipeline.executions", 1);
  NDE_METRIC_COUNT("pipeline.output_rows", out.size());
  // Estimators execute the pipeline once per coalition; sample the stream
  // instead of logging every execution.
  NDE_LOG_EVERY_N(DEBUG, 100) << "pipeline executed: " << out.size()
                              << " output rows";
  return out;
}

Result<PipelineOutput> MlPipeline::Run() const { return Execute(BuildPlan()); }

Result<PipelineOutput> MlPipeline::RunWithout(
    const std::vector<SourceRef>& removed) const {
  std::unordered_set<uint64_t> removed_keys = MakeKeySet(removed);
  std::vector<PlanNodePtr> source_nodes;
  source_nodes.reserve(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    PlanNodePtr source = MakeSource(static_cast<int32_t>(i), sources_[i].name,
                                    sources_[i].table);
    // Wrapping each source keeps original row ids in provenance while
    // excluding the removed rows from every downstream operator.
    source_nodes.push_back(MakeProvenanceFilter(std::move(source), removed_keys));
  }
  return Execute(builder_(source_nodes));
}

PipelineOutput MlPipeline::RemoveByProvenance(
    const PipelineOutput& output, const std::vector<SourceRef>& removed) {
  NDE_TRACE_SPAN_VAR(span, "MlPipeline::RemoveByProvenance", "pipeline");
  NDE_METRIC_COUNT("pipeline.provenance_shortcut_removals", 1);
  std::unordered_set<uint64_t> removed_keys = MakeKeySet(removed);
  std::vector<size_t> kept;
  kept.reserve(output.size());
  for (size_t r = 0; r < output.size(); ++r) {
    if (!output.provenance[r].IntersectsKeys(removed_keys)) kept.push_back(r);
  }
  PipelineOutput out;
  out.features = output.features.SelectRows(kept);
  out.labels.reserve(kept.size());
  out.provenance.reserve(kept.size());
  for (size_t r : kept) {
    out.labels.push_back(output.labels[r]);
    out.provenance.push_back(output.provenance[r]);
  }
  out.processed = output.processed.SelectRows(kept);
  out.encoders = output.encoders;  // Fitted state carried over unchanged.
  return out;
}

}  // namespace nde
