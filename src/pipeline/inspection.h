#ifndef NDE_PIPELINE_INSPECTION_H_
#define NDE_PIPELINE_INSPECTION_H_

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "pipeline/pipeline.h"
#include "pipeline/plan.h"

namespace nde {

/// Severity of a screening finding.
enum class IssueSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

const char* IssueSeverityToString(IssueSeverity severity);

/// One finding produced by a pipeline screen, in the spirit of mlinspect's
/// data-distribution debugger and ArgusEyes' CI pipeline screening.
struct PipelineIssue {
  std::string check;     ///< which screen fired ("distribution_change", ...)
  IssueSeverity severity;
  std::string message;   ///< human-readable description

  std::string ToString() const;
};

/// --- Individual screens -----------------------------------------------------

/// Walks the plan and, for every unary operator, compares the proportion of
/// each category of each `sensitive_column` between the operator's input and
/// output. A category whose share shrinks below `min_ratio` of its input
/// share triggers a warning — the classic "your filter silently dropped a
/// demographic group" bug mlinspect demonstrates.
Result<std::vector<PipelineIssue>> CheckDistributionChange(
    const PlanNode& root, const std::vector<std::string>& sensitive_columns,
    double min_ratio = 0.5);

/// Flags source rows feeding both the train-side and test-side outputs —
/// provenance-level train/test leakage detection.
std::vector<PipelineIssue> CheckDataLeakage(
    const std::vector<RowProvenance>& train_provenance,
    const std::vector<RowProvenance>& test_provenance);

/// Neighborhood-disagreement label screen: an example is a label-error
/// suspect when more than half of its `k` nearest neighbors (excluding
/// itself) carry a different label. Fires a warning when the suspect share
/// exceeds `max_suspect_fraction`. Returns the suspect indices via
/// `suspects` when non-null.
std::vector<PipelineIssue> CheckLabelErrors(const MlDataset& data, size_t k = 5,
                                            double max_suspect_fraction = 0.15,
                                            std::vector<size_t>* suspects = nullptr);

/// Warns for each column whose null fraction exceeds `max_null_fraction`.
std::vector<PipelineIssue> CheckNullFractions(const Table& table,
                                              double max_null_fraction = 0.2);

/// Warns when any class's share of `labels` is below `min_class_fraction`.
std::vector<PipelineIssue> CheckClassBalance(const std::vector<int>& labels,
                                             double min_class_fraction = 0.1);

/// Near-duplicate screen for a string column: flags row pairs whose values
/// are within `max_edit_distance` of each other (exact duplicates included).
/// Duplicated entities inflate apparent data volume and leak across
/// train/test splits — a classic integration-stage data error. The matched
/// pairs are returned via `pairs` when non-null (first < second).
Result<std::vector<PipelineIssue>> CheckNearDuplicates(
    const Table& table, const std::string& column, size_t max_edit_distance = 1,
    std::vector<std::pair<size_t, size_t>>* pairs = nullptr);

/// --- Aggregate screening ----------------------------------------------------

/// Configuration for `ScreenPipeline`.
struct ScreeningOptions {
  std::vector<std::string> sensitive_columns;  ///< for distribution change
  double min_distribution_ratio = 0.5;
  size_t label_check_k = 5;
  double max_suspect_fraction = 0.15;
  double max_null_fraction = 0.2;
  double min_class_fraction = 0.1;
};

/// Runs every applicable screen over a pipeline and its output, ArgusEyes
/// style: distribution change across the plan, null fractions on each source
/// table, class balance and label-error screen on the encoded output.
Result<std::vector<PipelineIssue>> ScreenPipeline(const MlPipeline& pipeline,
                                                  const PipelineOutput& output,
                                                  const ScreeningOptions& options);

}  // namespace nde

#endif  // NDE_PIPELINE_INSPECTION_H_
