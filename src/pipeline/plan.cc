#include "pipeline/plan.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

thread_local PlanProfiler* t_active_profiler = nullptr;

}  // namespace

Result<AnnotatedTable> PlanNode::Execute() const {
  // One chaos hook covers every operator: Execute() is the NVI gateway all
  // plan nodes funnel through, so arming `pipeline.execute` proves the whole
  // operator tree propagates a mid-plan failure instead of aborting.
  NDE_FAILPOINT("pipeline.execute");
  PlanProfiler* profiler = t_active_profiler;
  // With NDE_TELEMETRY_ENABLED == 0 `traced` is constant false and the
  // whole instrumented branch folds away.
  const bool traced = NDE_TELEMETRY_ENABLED && telemetry::Enabled();
  if (profiler == nullptr && !traced) return ExecuteImpl();

  std::optional<telemetry::ScopedSpan> span;
  if (traced) span.emplace(label(), "plan");
  auto start = std::chrono::steady_clock::now();
  Result<AnnotatedTable> result = ExecuteImpl();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  size_t rows_out = result.ok() ? result->table.num_rows() : 0;
  if (profiler != nullptr) profiler->Record(this, rows_out, wall_ms);
  if (traced) {
    span->AddArg("rows_out", static_cast<int64_t>(rows_out));
    NDE_METRIC_RECORD("pipeline.operator_ms", wall_ms);
    NDE_METRIC_COUNT("pipeline.operator_executions", 1);
    NDE_METRIC_COUNT("pipeline.operator_rows_out", rows_out);
  }
  return result;
}

PlanProfiler::PlanProfiler() : previous_(t_active_profiler) {
  t_active_profiler = this;
}

PlanProfiler::~PlanProfiler() { t_active_profiler = previous_; }

PlanProfiler* PlanProfiler::Active() { return t_active_profiler; }

void PlanProfiler::Record(const PlanNode* node, size_t rows_out,
                          double wall_ms) {
  OperatorStats& stats = stats_[node];
  ++stats.invocations;
  stats.rows_out += rows_out;
  stats.wall_ms += wall_ms;
}

const OperatorStats* PlanProfiler::StatsFor(const PlanNode& node) const {
  auto it = stats_.find(&node);
  return it == stats_.end() ? nullptr : &it->second;
}

namespace {

void AppendAnnotatedPlanText(const PlanProfiler& profiler, const PlanNode& node,
                             size_t depth, std::ostringstream* os) {
  for (size_t i = 0; i < depth; ++i) *os << "  ";
  *os << node.label();
  if (const OperatorStats* stats = profiler.StatsFor(node)) {
    size_t rows_in = 0;
    double children_ms = 0.0;
    for (const PlanNode* child : node.children()) {
      if (const OperatorStats* child_stats = profiler.StatsFor(*child)) {
        rows_in += child_stats->rows_out;
        children_ms += child_stats->wall_ms;
      }
    }
    *os << StrFormat("  [%zu -> %zu rows, %.3f ms total, %.3f ms self",
                     rows_in, stats->rows_out, stats->wall_ms,
                     std::max(stats->wall_ms - children_ms, 0.0));
    if (stats->invocations > 1) {
      *os << StrFormat(", %zu runs", stats->invocations);
    }
    *os << "]";
  }
  *os << "\n";
  for (const PlanNode* child : node.children()) {
    AppendAnnotatedPlanText(profiler, *child, depth + 1, os);
  }
}

}  // namespace

std::string PlanProfiler::AnnotatedPlan(const PlanNode& root) const {
  std::ostringstream os;
  AppendAnnotatedPlanText(*this, root, 0, &os);
  return os.str();
}

Status AnnotatedTable::Validate() const {
  NDE_RETURN_IF_ERROR(table.Validate());
  if (provenance.size() != table.num_rows()) {
    return Status::Internal(
        StrFormat("provenance entries %zu != table rows %zu",
                  provenance.size(), table.num_rows()));
  }
  return Status::OK();
}

Result<Value> RowView::Get(const std::string& column) const {
  NDE_ASSIGN_OR_RETURN(size_t col, table_->schema().FieldIndex(column));
  return table_->At(row_, col);
}

const Value& RowView::GetOrDie(const std::string& column) const {
  Result<size_t> col = table_->schema().FieldIndex(column);
  NDE_CHECK(col.ok()) << "unknown column '" << column << "'";
  return table_->At(row_, col.value());
}

namespace {

class SourceNode : public PlanNode {
 public:
  SourceNode(int32_t table_id, std::string name, Table table)
      : table_id_(table_id), name_(std::move(name)), table_(std::move(table)) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    AnnotatedTable out;
    out.table = table_;
    out.provenance.reserve(table_.num_rows());
    for (size_t r = 0; r < table_.num_rows(); ++r) {
      out.provenance.emplace_back(
          SourceRef{table_id_, static_cast<uint32_t>(r)});
    }
    return out;
  }

  std::string label() const override {
    return StrFormat("Source(%s, id=%d, %zu rows)", name_.c_str(), table_id_,
                     table_.num_rows());
  }

  std::vector<const PlanNode*> children() const override { return {}; }

 private:
  int32_t table_id_;
  std::string name_;
  Table table_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr input, std::string description, RowPredicate predicate)
      : input_(std::move(input)),
        description_(std::move(description)),
        predicate_(std::move(predicate)) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    NDE_ASSIGN_OR_RETURN(AnnotatedTable in, input_->Execute());
    std::vector<size_t> kept;
    AnnotatedTable out;
    out.table = in.table.FilterRows(
        [&](size_t r) { return predicate_(RowView(&in.table, r)); }, &kept);
    out.provenance.reserve(kept.size());
    for (size_t r : kept) out.provenance.push_back(in.provenance[r]);
    return out;
  }

  std::string label() const override {
    return StrFormat("Filter(%s)", description_.c_str());
  }

  std::vector<const PlanNode*> children() const override {
    return {input_.get()};
  }

 private:
  PlanNodePtr input_;
  std::string description_;
  RowPredicate predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr input, std::vector<std::string> columns,
              std::vector<ComputedColumn> computed)
      : input_(std::move(input)),
        columns_(std::move(columns)),
        computed_(std::move(computed)) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    NDE_ASSIGN_OR_RETURN(AnnotatedTable in, input_->Execute());
    AnnotatedTable out;
    NDE_ASSIGN_OR_RETURN(out.table, in.table.SelectColumns(columns_));
    for (const ComputedColumn& cc : computed_) {
      std::vector<Value> values;
      values.reserve(in.table.num_rows());
      for (size_t r = 0; r < in.table.num_rows(); ++r) {
        values.push_back(cc.udf(RowView(&in.table, r)));
      }
      NDE_RETURN_IF_ERROR(out.table.AddColumn(cc.field, std::move(values)));
    }
    out.provenance = std::move(in.provenance);
    return out;
  }

  std::string label() const override {
    std::string cols = JoinStrings(columns_, ", ");
    if (!computed_.empty()) {
      std::vector<std::string> names;
      for (const ComputedColumn& cc : computed_) names.push_back(cc.field.name);
      cols += " + udf[" + JoinStrings(names, ", ") + "]";
    }
    return StrFormat("Project(%s)", cols.c_str());
  }

  std::vector<const PlanNode*> children() const override {
    return {input_.get()};
  }

 private:
  PlanNodePtr input_;
  std::vector<std::string> columns_;
  std::vector<ComputedColumn> computed_;
};

/// Output schema shared by both join flavors: left columns then right columns
/// minus the right key, with "_r" suffixes on collisions.
Result<Schema> JoinOutputSchema(const Schema& left, const Schema& right,
                                const std::string& right_key,
                                std::vector<size_t>* right_cols) {
  std::vector<Field> fields = left.fields();
  NDE_ASSIGN_OR_RETURN(size_t right_key_idx, right.FieldIndex(right_key));
  for (size_t c = 0; c < right.num_fields(); ++c) {
    if (c == right_key_idx) continue;
    Field f = right.field(c);
    if (left.HasField(f.name)) f.name += "_r";
    fields.push_back(std::move(f));
    right_cols->push_back(c);
  }
  // Detect any remaining duplicates (e.g., both sides had "x" and "x_r").
  Schema schema;
  for (Field& f : fields) {
    NDE_RETURN_IF_ERROR(schema.AddField(std::move(f)));
  }
  return schema;
}

/// Materializes one joined row.
std::vector<Value> JoinRow(const Table& left, size_t lr, const Table& right,
                           size_t rr, const std::vector<size_t>& right_cols) {
  std::vector<Value> row = left.Row(lr);
  row.reserve(row.size() + right_cols.size());
  for (size_t c : right_cols) row.push_back(right.At(rr, c));
  return row;
}

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanNodePtr left, PlanNodePtr right, std::string left_key,
               std::string right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    NDE_ASSIGN_OR_RETURN(AnnotatedTable l, left_->Execute());
    NDE_ASSIGN_OR_RETURN(AnnotatedTable r, right_->Execute());
    NDE_ASSIGN_OR_RETURN(size_t lk, l.table.schema().FieldIndex(left_key_));
    NDE_ASSIGN_OR_RETURN(size_t rk, r.table.schema().FieldIndex(right_key_));

    std::vector<size_t> right_cols;
    NDE_ASSIGN_OR_RETURN(
        Schema schema,
        JoinOutputSchema(l.table.schema(), r.table.schema(), right_key_,
                         &right_cols));

    // Build side: right table keyed by join value.
    std::unordered_map<Value, std::vector<size_t>, ValueHash> build;
    build.reserve(r.table.num_rows() * 2);
    for (size_t rr = 0; rr < r.table.num_rows(); ++rr) {
      const Value& key = r.table.At(rr, rk);
      if (key.is_null()) continue;
      build[key].push_back(rr);
    }

    AnnotatedTable out;
    out.table = Table(schema);
    for (size_t lr = 0; lr < l.table.num_rows(); ++lr) {
      const Value& key = l.table.At(lr, lk);
      if (key.is_null()) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (size_t rr : it->second) {
        NDE_RETURN_IF_ERROR(
            out.table.AppendRow(JoinRow(l.table, lr, r.table, rr, right_cols)));
        out.provenance.push_back(
            RowProvenance::Merge(l.provenance[lr], r.provenance[rr]));
      }
    }
    return out;
  }

  std::string label() const override {
    return StrFormat("Join(%s = %s)", left_key_.c_str(), right_key_.c_str());
  }

  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::string left_key_;
  std::string right_key_;
};

class FuzzyJoinNode : public PlanNode {
 public:
  FuzzyJoinNode(PlanNodePtr left, PlanNodePtr right, std::string left_key,
                std::string right_key, size_t max_edit_distance)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        max_distance_(max_edit_distance) {}

  Result<AnnotatedTable> ExecuteImpl() const override {
    NDE_ASSIGN_OR_RETURN(AnnotatedTable l, left_->Execute());
    NDE_ASSIGN_OR_RETURN(AnnotatedTable r, right_->Execute());
    NDE_ASSIGN_OR_RETURN(size_t lk, l.table.schema().FieldIndex(left_key_));
    NDE_ASSIGN_OR_RETURN(size_t rk, r.table.schema().FieldIndex(right_key_));
    if (l.table.schema().field(lk).type != DataType::kString ||
        r.table.schema().field(rk).type != DataType::kString) {
      return Status::InvalidArgument("fuzzy join requires string keys");
    }

    std::vector<size_t> right_cols;
    NDE_ASSIGN_OR_RETURN(
        Schema schema,
        JoinOutputSchema(l.table.schema(), r.table.schema(), right_key_,
                         &right_cols));

    // Bucket right rows by key length so candidates outside the edit-distance
    // length band are skipped without computing the DP.
    std::map<size_t, std::vector<size_t>> by_length;
    for (size_t rr = 0; rr < r.table.num_rows(); ++rr) {
      const Value& key = r.table.At(rr, rk);
      if (key.is_null()) continue;
      by_length[key.as_string().size()].push_back(rr);
    }

    AnnotatedTable out;
    out.table = Table(schema);
    for (size_t lr = 0; lr < l.table.num_rows(); ++lr) {
      const Value& key = l.table.At(lr, lk);
      if (key.is_null()) continue;
      const std::string& lkey = key.as_string();
      size_t lo = lkey.size() > max_distance_ ? lkey.size() - max_distance_ : 0;
      size_t hi = lkey.size() + max_distance_;
      for (auto it = by_length.lower_bound(lo);
           it != by_length.end() && it->first <= hi; ++it) {
        for (size_t rr : it->second) {
          const std::string& rkey = r.table.At(rr, rk).as_string();
          if (EditDistance(lkey, rkey) > max_distance_) continue;
          NDE_RETURN_IF_ERROR(out.table.AppendRow(
              JoinRow(l.table, lr, r.table, rr, right_cols)));
          out.provenance.push_back(
              RowProvenance::Merge(l.provenance[lr], r.provenance[rr]));
        }
      }
    }
    return out;
  }

  std::string label() const override {
    return StrFormat("FuzzyJoin(%s ~ %s, d<=%zu)", left_key_.c_str(),
                     right_key_.c_str(), max_distance_);
  }

  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::string left_key_;
  std::string right_key_;
  size_t max_distance_;
};

void AppendPlanText(const PlanNode& node, size_t depth, std::ostringstream* os) {
  for (size_t i = 0; i < depth; ++i) *os << "  ";
  *os << node.label() << "\n";
  for (const PlanNode* child : node.children()) {
    AppendPlanText(*child, depth + 1, os);
  }
}

void CollectDotNodes(const PlanNode& node,
                     std::map<const PlanNode*, size_t>* ids,
                     std::ostringstream* os) {
  if (ids->count(&node) > 0) return;
  size_t id = ids->size();
  (*ids)[&node] = id;
  std::string label = node.label();
  // Escape double quotes for DOT.
  std::string escaped;
  for (char c : label) {
    if (c == '"') escaped += "\\\"";
    else escaped.push_back(c);
  }
  *os << "  n" << id << " [label=\"" << escaped << "\"];\n";
  for (const PlanNode* child : node.children()) {
    CollectDotNodes(*child, ids, os);
    *os << "  n" << (*ids)[child] << " -> n" << id << ";\n";
  }
}

}  // namespace

PlanNodePtr MakeSource(int32_t table_id, std::string name, Table table) {
  return std::make_shared<SourceNode>(table_id, std::move(name),
                                      std::move(table));
}

PlanNodePtr MakeFilter(PlanNodePtr input, std::string description,
                       RowPredicate predicate) {
  NDE_CHECK(input != nullptr);
  return std::make_shared<FilterNode>(std::move(input), std::move(description),
                                      std::move(predicate));
}

PlanNodePtr MakeFilterEquals(PlanNodePtr input, const std::string& column,
                             Value value) {
  std::string description = column + " == " + value.ToString();
  return MakeFilter(std::move(input), std::move(description),
                    [column, value](const RowView& row) {
                      Result<Value> cell = row.Get(column);
                      return cell.ok() && !cell.value().is_null() &&
                             cell.value() == value;
                    });
}

PlanNodePtr MakeProject(PlanNodePtr input, std::vector<std::string> columns,
                        std::vector<ComputedColumn> computed) {
  NDE_CHECK(input != nullptr);
  return std::make_shared<ProjectNode>(std::move(input), std::move(columns),
                                       std::move(computed));
}

PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::string left_key, std::string right_key) {
  NDE_CHECK(left != nullptr);
  NDE_CHECK(right != nullptr);
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_key),
                                        std::move(right_key));
}

PlanNodePtr MakeFuzzyJoin(PlanNodePtr left, PlanNodePtr right,
                          std::string left_key, std::string right_key,
                          size_t max_edit_distance) {
  NDE_CHECK(left != nullptr);
  NDE_CHECK(right != nullptr);
  return std::make_shared<FuzzyJoinNode>(std::move(left), std::move(right),
                                         std::move(left_key),
                                         std::move(right_key),
                                         max_edit_distance);
}

std::string PlanToString(const PlanNode& root) {
  std::ostringstream os;
  AppendPlanText(root, 0, &os);
  return os.str();
}

std::string PlanToDot(const PlanNode& root) {
  std::ostringstream os;
  os << "digraph pipeline {\n  rankdir=BT;\n";
  std::map<const PlanNode*, size_t> ids;
  CollectDotNodes(root, &ids, &os);
  os << "}\n";
  return os.str();
}

}  // namespace nde
