#include "pipeline/inspection.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "ml/knn.h"

namespace nde {

const char* IssueSeverityToString(IssueSeverity severity) {
  switch (severity) {
    case IssueSeverity::kInfo:
      return "info";
    case IssueSeverity::kWarning:
      return "warning";
    case IssueSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string PipelineIssue::ToString() const {
  return StrFormat("[%s] %s: %s", IssueSeverityToString(severity),
                   check.c_str(), message.c_str());
}

namespace {

/// Category -> proportion for one column of a table (nulls tracked under a
/// dedicated null key rendered as "<null>").
std::map<std::string, double> CategoryProportions(const Table& table,
                                                  size_t col) {
  std::map<std::string, double> proportions;
  if (table.num_rows() == 0) return proportions;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.At(r, col);
    std::string key = v.is_null() ? "<null>" : v.ToString();
    proportions[key] += 1.0;
  }
  for (auto& [key, count] : proportions) {
    count /= static_cast<double>(table.num_rows());
  }
  return proportions;
}

void CheckNodeDistribution(const PlanNode& node, const AnnotatedTable& input,
                           const AnnotatedTable& output,
                           const std::vector<std::string>& sensitive_columns,
                           double min_ratio,
                           std::vector<PipelineIssue>* issues) {
  for (const std::string& column : sensitive_columns) {
    Result<size_t> in_col = input.table.schema().FieldIndex(column);
    Result<size_t> out_col = output.table.schema().FieldIndex(column);
    if (!in_col.ok() || !out_col.ok()) continue;
    if (output.table.num_rows() == 0) {
      issues->push_back(PipelineIssue{
          "distribution_change", IssueSeverity::kError,
          StrFormat("operator '%s' produced no rows", node.label().c_str())});
      return;
    }
    auto before = CategoryProportions(input.table, in_col.value());
    auto after = CategoryProportions(output.table, out_col.value());
    for (const auto& [category, in_share] : before) {
      if (in_share < 0.01) continue;  // Ignore trace categories.
      auto it = after.find(category);
      double out_share = it == after.end() ? 0.0 : it->second;
      if (out_share < min_ratio * in_share) {
        issues->push_back(PipelineIssue{
            "distribution_change", IssueSeverity::kWarning,
            StrFormat("operator '%s' shrank group %s=%s from %.1f%% to %.1f%%",
                      node.label().c_str(), column.c_str(), category.c_str(),
                      100.0 * in_share, 100.0 * out_share)});
      }
    }
  }
}

Status WalkDistribution(const PlanNode& node,
                        const std::vector<std::string>& sensitive_columns,
                        double min_ratio, std::vector<PipelineIssue>* issues,
                        std::unordered_map<const PlanNode*, AnnotatedTable>* cache) {
  if (cache->count(&node) > 0) return Status::OK();
  for (const PlanNode* child : node.children()) {
    NDE_RETURN_IF_ERROR(
        WalkDistribution(*child, sensitive_columns, min_ratio, issues, cache));
  }
  Result<AnnotatedTable> result = node.Execute();
  if (!result.ok()) return result.status();
  // Compare against each child's output (unary operators produce exactly the
  // comparison mlinspect performs; for joins each side is compared).
  for (const PlanNode* child : node.children()) {
    CheckNodeDistribution(node, cache->at(child), result.value(),
                          sensitive_columns, min_ratio, issues);
  }
  (*cache)[&node] = std::move(result).value();
  return Status::OK();
}

}  // namespace

Result<std::vector<PipelineIssue>> CheckDistributionChange(
    const PlanNode& root, const std::vector<std::string>& sensitive_columns,
    double min_ratio) {
  std::vector<PipelineIssue> issues;
  std::unordered_map<const PlanNode*, AnnotatedTable> cache;
  NDE_RETURN_IF_ERROR(
      WalkDistribution(root, sensitive_columns, min_ratio, &issues, &cache));
  return issues;
}

std::vector<PipelineIssue> CheckDataLeakage(
    const std::vector<RowProvenance>& train_provenance,
    const std::vector<RowProvenance>& test_provenance) {
  std::unordered_set<uint64_t> train_keys;
  for (const RowProvenance& prov : train_provenance) {
    for (const SourceRef& ref : prov.refs()) train_keys.insert(ref.Key());
  }
  std::unordered_set<uint64_t> leaked;
  for (const RowProvenance& prov : test_provenance) {
    for (const SourceRef& ref : prov.refs()) {
      if (train_keys.count(ref.Key()) > 0) leaked.insert(ref.Key());
    }
  }
  std::vector<PipelineIssue> issues;
  if (!leaked.empty()) {
    issues.push_back(PipelineIssue{
        "data_leakage", IssueSeverity::kError,
        StrFormat("%zu source rows feed both the train and test outputs",
                  leaked.size())});
  }
  return issues;
}

std::vector<PipelineIssue> CheckLabelErrors(const MlDataset& data, size_t k,
                                            double max_suspect_fraction,
                                            std::vector<size_t>* suspects) {
  std::vector<PipelineIssue> issues;
  if (suspects != nullptr) suspects->clear();
  if (data.size() < k + 1) return issues;
  KnnClassifier knn(k);
  Status s = knn.Fit(data);
  NDE_CHECK(s.ok()) << s.ToString();
  size_t suspect_count = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    // k+1 neighbors; the point itself is its own nearest neighbor.
    std::vector<size_t> neighbors =
        knn.Neighbors(data.features.RowSpan(i), k + 1);
    size_t disagree = 0;
    size_t considered = 0;
    for (size_t idx : neighbors) {
      if (idx == i) continue;
      ++considered;
      if (data.labels[idx] != data.labels[i]) ++disagree;
    }
    if (considered > 0 && disagree * 2 > considered) {
      ++suspect_count;
      if (suspects != nullptr) suspects->push_back(i);
    }
  }
  double fraction = static_cast<double>(suspect_count) /
                    static_cast<double>(data.size());
  if (fraction > max_suspect_fraction) {
    issues.push_back(PipelineIssue{
        "label_errors", IssueSeverity::kWarning,
        StrFormat("%.1f%% of examples disagree with their neighborhood label "
                  "(threshold %.1f%%)",
                  100.0 * fraction, 100.0 * max_suspect_fraction)});
  }
  return issues;
}

std::vector<PipelineIssue> CheckNullFractions(const Table& table,
                                              double max_null_fraction) {
  std::vector<PipelineIssue> issues;
  if (table.num_rows() == 0) return issues;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    double fraction = static_cast<double>(table.CountNulls(c)) /
                      static_cast<double>(table.num_rows());
    if (fraction > max_null_fraction) {
      issues.push_back(PipelineIssue{
          "null_fraction", IssueSeverity::kWarning,
          StrFormat("column '%s' is %.1f%% null (threshold %.1f%%)",
                    table.schema().field(c).name.c_str(), 100.0 * fraction,
                    100.0 * max_null_fraction)});
    }
  }
  return issues;
}

std::vector<PipelineIssue> CheckClassBalance(const std::vector<int>& labels,
                                             double min_class_fraction) {
  std::vector<PipelineIssue> issues;
  if (labels.empty()) {
    issues.push_back(PipelineIssue{"class_balance", IssueSeverity::kError,
                                   "pipeline produced no labeled rows"});
    return issues;
  }
  std::map<int, size_t> counts;
  for (int label : labels) ++counts[label];
  for (const auto& [label, count] : counts) {
    double fraction =
        static_cast<double>(count) / static_cast<double>(labels.size());
    if (fraction < min_class_fraction) {
      issues.push_back(PipelineIssue{
          "class_balance", IssueSeverity::kWarning,
          StrFormat("class %d holds only %.1f%% of examples (threshold %.1f%%)",
                    label, 100.0 * fraction, 100.0 * min_class_fraction)});
    }
  }
  return issues;
}

Result<std::vector<PipelineIssue>> CheckNearDuplicates(
    const Table& table, const std::string& column, size_t max_edit_distance,
    std::vector<std::pair<size_t, size_t>>* pairs) {
  NDE_ASSIGN_OR_RETURN(size_t col, table.schema().FieldIndex(column));
  if (table.schema().field(col).type != DataType::kString) {
    return Status::InvalidArgument("duplicate screen requires a string column");
  }
  if (pairs != nullptr) pairs->clear();
  // Bucket by length so only pairs within the edit-distance length band are
  // compared (same pruning as the fuzzy join).
  std::map<size_t, std::vector<size_t>> by_length;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.At(r, col);
    if (!v.is_null()) by_length[v.as_string().size()].push_back(r);
  }
  size_t duplicate_pairs = 0;
  for (auto it = by_length.begin(); it != by_length.end(); ++it) {
    for (auto jt = it; jt != by_length.end(); ++jt) {
      if (jt->first > it->first + max_edit_distance) break;
      for (size_t a : it->second) {
        for (size_t b : jt->second) {
          if (b <= a) continue;
          const std::string& sa = table.At(a, col).as_string();
          const std::string& sb = table.At(b, col).as_string();
          if (EditDistance(sa, sb) <= max_edit_distance) {
            ++duplicate_pairs;
            if (pairs != nullptr) pairs->push_back({a, b});
          }
        }
      }
    }
  }
  std::vector<PipelineIssue> issues;
  if (duplicate_pairs > 0) {
    issues.push_back(PipelineIssue{
        "near_duplicates", IssueSeverity::kWarning,
        StrFormat("%zu near-duplicate pair(s) in column '%s' (edit distance "
                  "<= %zu)",
                  duplicate_pairs, column.c_str(), max_edit_distance)});
  }
  return issues;
}

Result<std::vector<PipelineIssue>> ScreenPipeline(
    const MlPipeline& pipeline, const PipelineOutput& output,
    const ScreeningOptions& options) {
  std::vector<PipelineIssue> issues;
  // Source-table hygiene.
  for (const NamedTable& source : pipeline.sources()) {
    auto nulls = CheckNullFractions(source.table, options.max_null_fraction);
    issues.insert(issues.end(), nulls.begin(), nulls.end());
  }
  // Distribution change across the plan.
  PlanNodePtr plan = pipeline.BuildPlan();
  NDE_ASSIGN_OR_RETURN(
      std::vector<PipelineIssue> distribution,
      CheckDistributionChange(*plan, options.sensitive_columns,
                              options.min_distribution_ratio));
  issues.insert(issues.end(), distribution.begin(), distribution.end());
  // Output-level screens.
  auto balance = CheckClassBalance(output.labels, options.min_class_fraction);
  issues.insert(issues.end(), balance.begin(), balance.end());
  auto labels = CheckLabelErrors(output.ToDataset(), options.label_check_k,
                                 options.max_suspect_fraction);
  issues.insert(issues.end(), labels.begin(), labels.end());
  return issues;
}

}  // namespace nde
