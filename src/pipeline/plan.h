#ifndef NDE_PIPELINE_PLAN_H_
#define NDE_PIPELINE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "pipeline/provenance.h"

namespace nde {

/// A table whose rows carry why-provenance back to pipeline source tables.
struct AnnotatedTable {
  Table table;
  std::vector<RowProvenance> provenance;  ///< one entry per table row

  Status Validate() const;
};

/// Lightweight accessor for one row during predicate / UDF evaluation.
class RowView {
 public:
  RowView(const Table* table, size_t row) : table_(table), row_(row) {}

  /// Cell by column name; NotFound for unknown columns.
  Result<Value> Get(const std::string& column) const;

  /// Cell by column name; aborts on unknown columns (for trusted UDFs).
  const Value& GetOrDie(const std::string& column) const;

  size_t row_index() const { return row_; }
  const Table& table() const { return *table_; }

 private:
  const Table* table_;
  size_t row_;
};

/// Row predicate used by Filter.
using RowPredicate = std::function<bool(const RowView&)>;
/// Row-level UDF producing one cell, used by Project's computed columns.
using RowUdf = std::function<Value(const RowView&)>;

/// A node in the logical pipeline plan. Plans are immutable DAGs built from
/// shared_ptr edges; `Execute` evaluates the subtree bottom-up, threading
/// row-level provenance through every operator.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Evaluates this subtree to an annotated table.
  virtual Result<AnnotatedTable> Execute() const = 0;

  /// Operator label, e.g. "Filter(sector == healthcare)".
  virtual std::string label() const = 0;

  /// Child nodes (inputs), empty for sources.
  virtual std::vector<const PlanNode*> children() const = 0;
};

using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// Leaf scanning a registered source table. Every row r is annotated with
/// provenance {(table_id, r)}.
PlanNodePtr MakeSource(int32_t table_id, std::string name, Table table);

/// Keeps rows satisfying `predicate`. `description` is used in plan labels.
PlanNodePtr MakeFilter(PlanNodePtr input, std::string description,
                       RowPredicate predicate);

/// Convenience filter: keeps rows where `column` equals `value`
/// (nulls never match).
PlanNodePtr MakeFilterEquals(PlanNodePtr input, const std::string& column,
                             Value value);

/// Projects to `columns` (in order), then appends computed columns, each
/// produced by a UDF over the *input* row.
struct ComputedColumn {
  Field field;
  RowUdf udf;
};
PlanNodePtr MakeProject(PlanNodePtr input, std::vector<std::string> columns,
                        std::vector<ComputedColumn> computed = {});

/// Inner hash equi-join on left_key == right_key (null keys never match).
/// Output schema: all left columns, then right columns except `right_key`;
/// right column names colliding with left ones get an "_r" suffix. Output
/// provenance is the merge (monomial product) of the matched rows'.
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::string left_key, std::string right_key);

/// Inner fuzzy join for string keys: rows match when the edit distance
/// between their keys is <= max_edit_distance. Each left row joins all
/// matching right rows. Same schema/provenance rules as the hash join.
PlanNodePtr MakeFuzzyJoin(PlanNodePtr left, PlanNodePtr right,
                          std::string left_key, std::string right_key,
                          size_t max_edit_distance);

/// --- Plan rendering ---------------------------------------------------------

/// Indented text rendering of the plan tree (Figure 3's "query plan" view).
std::string PlanToString(const PlanNode& root);

/// Graphviz DOT rendering of the plan DAG.
std::string PlanToDot(const PlanNode& root);

}  // namespace nde

#endif  // NDE_PIPELINE_PLAN_H_
