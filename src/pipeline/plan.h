#ifndef NDE_PIPELINE_PLAN_H_
#define NDE_PIPELINE_PLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "pipeline/provenance.h"

namespace nde {

/// A table whose rows carry why-provenance back to pipeline source tables.
struct AnnotatedTable {
  Table table;
  std::vector<RowProvenance> provenance;  ///< one entry per table row

  Status Validate() const;
};

/// Lightweight accessor for one row during predicate / UDF evaluation.
class RowView {
 public:
  RowView(const Table* table, size_t row) : table_(table), row_(row) {}

  /// Cell by column name; NotFound for unknown columns.
  Result<Value> Get(const std::string& column) const;

  /// Cell by column name; aborts on unknown columns (for trusted UDFs).
  const Value& GetOrDie(const std::string& column) const;

  size_t row_index() const { return row_; }
  const Table& table() const { return *table_; }

 private:
  const Table* table_;
  size_t row_;
};

/// Row predicate used by Filter.
using RowPredicate = std::function<bool(const RowView&)>;
/// Row-level UDF producing one cell, used by Project's computed columns.
using RowUdf = std::function<Value(const RowView&)>;

/// A node in the logical pipeline plan. Plans are immutable DAGs built from
/// shared_ptr edges; `Execute` evaluates the subtree bottom-up, threading
/// row-level provenance through every operator.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Evaluates this subtree to an annotated table. Non-virtual: wraps the
  /// operator's ExecuteImpl with per-operator instrumentation — a telemetry
  /// span + operator metrics when telemetry is enabled, and rows/wall-time
  /// stats when a PlanProfiler is active on this thread. With neither, it is
  /// a plain virtual dispatch.
  Result<AnnotatedTable> Execute() const;

  /// Operator label, e.g. "Filter(sector == healthcare)".
  virtual std::string label() const = 0;

  /// Child nodes (inputs), empty for sources.
  virtual std::vector<const PlanNode*> children() const = 0;

 private:
  /// The operator's actual evaluation; implementations execute their inputs
  /// via the instrumented `child->Execute()`.
  virtual Result<AnnotatedTable> ExecuteImpl() const = 0;
};

using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// Per-operator execution statistics collected by a PlanProfiler.
struct OperatorStats {
  size_t invocations = 0;
  size_t rows_out = 0;   ///< cumulative over invocations
  double wall_ms = 0.0;  ///< inclusive: children's execution time included
};

/// RAII collector of per-operator stats: while an instance is alive on the
/// current thread, every PlanNode::Execute on that thread reports into it
/// (profilers nest; the innermost wins). Keyed by node identity, so one
/// profiler can cover repeated executions of the same plan.
class PlanProfiler {
 public:
  PlanProfiler();
  ~PlanProfiler();

  PlanProfiler(const PlanProfiler&) = delete;
  PlanProfiler& operator=(const PlanProfiler&) = delete;

  /// The profiler currently active on this thread, or nullptr.
  static PlanProfiler* Active();

  void Record(const PlanNode* node, size_t rows_out, double wall_ms);

  /// Stats for `node`, or nullptr when it never executed under this profiler.
  const OperatorStats* StatsFor(const PlanNode& node) const;

  /// Indented plan rendering annotated with per-operator timings:
  ///   label  [rows_in -> rows_out, total ms, self ms]
  /// where self-time subtracts the children's inclusive time and rows_in is
  /// the sum of the children's rows_out.
  std::string AnnotatedPlan(const PlanNode& root) const;

 private:
  PlanProfiler* previous_;
  std::map<const PlanNode*, OperatorStats> stats_;
};

/// Leaf scanning a registered source table. Every row r is annotated with
/// provenance {(table_id, r)}.
PlanNodePtr MakeSource(int32_t table_id, std::string name, Table table);

/// Keeps rows satisfying `predicate`. `description` is used in plan labels.
PlanNodePtr MakeFilter(PlanNodePtr input, std::string description,
                       RowPredicate predicate);

/// Convenience filter: keeps rows where `column` equals `value`
/// (nulls never match).
PlanNodePtr MakeFilterEquals(PlanNodePtr input, const std::string& column,
                             Value value);

/// Projects to `columns` (in order), then appends computed columns, each
/// produced by a UDF over the *input* row.
struct ComputedColumn {
  Field field;
  RowUdf udf;
};
PlanNodePtr MakeProject(PlanNodePtr input, std::vector<std::string> columns,
                        std::vector<ComputedColumn> computed = {});

/// Inner hash equi-join on left_key == right_key (null keys never match).
/// Output schema: all left columns, then right columns except `right_key`;
/// right column names colliding with left ones get an "_r" suffix. Output
/// provenance is the merge (monomial product) of the matched rows'.
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::string left_key, std::string right_key);

/// Inner fuzzy join for string keys: rows match when the edit distance
/// between their keys is <= max_edit_distance. Each left row joins all
/// matching right rows. Same schema/provenance rules as the hash join.
PlanNodePtr MakeFuzzyJoin(PlanNodePtr left, PlanNodePtr right,
                          std::string left_key, std::string right_key,
                          size_t max_edit_distance);

/// --- Plan rendering ---------------------------------------------------------

/// Indented text rendering of the plan tree (Figure 3's "query plan" view).
std::string PlanToString(const PlanNode& root);

/// Graphviz DOT rendering of the plan DAG.
std::string PlanToDot(const PlanNode& root);

}  // namespace nde

#endif  // NDE_PIPELINE_PLAN_H_
