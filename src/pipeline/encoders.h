#ifndef NDE_PIPELINE_ENCODERS_H_
#define NDE_PIPELINE_ENCODERS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "linalg/matrix.h"

namespace nde {

/// One column-to-features encoder of the ColumnTransformer (the pipeline's
/// `feature_encoder` stage in Figure 3).
///
/// Lifecycle: `Fit` on the training column values, then `Transform` cell by
/// cell. `is_row_local()` reports whether Transform's output for a cell is
/// independent of the other rows *given the fitted state* is held fixed —
/// always true — and additionally whether the fitted state itself is
/// row-insensitive (e.g. a hashing vectorizer needs no statistics at all).
/// Row-local encoders make provenance-based what-if removal exact without
/// refitting.
class FeatureEncoder {
 public:
  virtual ~FeatureEncoder() = default;

  /// Learns encoding state from the training column.
  virtual Status Fit(const std::vector<Value>& column) = 0;

  /// Encodes one cell into `num_features()` doubles. Precondition: fitted.
  virtual void Transform(const Value& cell, double* out) const = 0;

  /// Width of the encoded block. Precondition: fitted.
  virtual size_t num_features() const = 0;

  /// True when the fitted state does not depend on the training data, so a
  /// fit on any subset yields identical transforms.
  virtual bool is_row_local() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<FeatureEncoder> Clone() const = 0;
};

/// Passes a numeric column through with optional standardization; nulls are
/// imputed with the fitted mean.
class NumericEncoder : public FeatureEncoder {
 public:
  explicit NumericEncoder(bool standardize = true);

  Status Fit(const std::vector<Value>& column) override;
  void Transform(const Value& cell, double* out) const override;
  size_t num_features() const override { return 1; }
  bool is_row_local() const override { return false; }
  std::string name() const override { return "numeric"; }
  std::unique_ptr<FeatureEncoder> Clone() const override;

 private:
  bool standardize_;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool fitted_ = false;
};

/// One-hot encodes a categorical (string or int64) column. Categories are the
/// distinct non-null fitted values in sorted order; unknown categories at
/// transform time map to all zeros. Nulls are imputed with the most frequent
/// fitted category (the Imputer+OneHotEncoder sub-pipeline of Figure 3),
/// unless `impute_most_frequent` is false, in which case nulls also map to
/// all zeros.
class OneHotEncoder : public FeatureEncoder {
 public:
  explicit OneHotEncoder(bool impute_most_frequent = true);

  Status Fit(const std::vector<Value>& column) override;
  void Transform(const Value& cell, double* out) const override;
  size_t num_features() const override { return categories_.size(); }
  bool is_row_local() const override { return false; }
  std::string name() const override { return "onehot"; }
  std::unique_ptr<FeatureEncoder> Clone() const override;

  const std::vector<Value>& categories() const { return categories_; }

 private:
  bool impute_most_frequent_;
  std::vector<Value> categories_;
  std::unordered_map<Value, size_t, ValueHash> index_;
  size_t most_frequent_ = 0;
  bool fitted_ = false;
};

/// Hashed bag-of-words vectorizer for text columns: whitespace tokenization,
/// token counts hashed into `num_buckets` signed buckets, L2-normalized.
/// Our stand-in for the paper's SentenceBERT embedding: a costly, wide text
/// featurizer that is fully row-local (needs no fit statistics).
class HashingVectorizer : public FeatureEncoder {
 public:
  explicit HashingVectorizer(size_t num_buckets = 64);

  Status Fit(const std::vector<Value>& column) override;
  void Transform(const Value& cell, double* out) const override;
  size_t num_features() const override { return num_buckets_; }
  bool is_row_local() const override { return true; }
  std::string name() const override { return "hashing_vectorizer"; }
  std::unique_ptr<FeatureEncoder> Clone() const override;

 private:
  size_t num_buckets_;
};

/// Binary indicator: 1.0 when the cell is non-null, else 0.0 (e.g. the
/// `has_twitter` feature of Figure 3 as an encoder instead of a UDF).
class NotNullIndicatorEncoder : public FeatureEncoder {
 public:
  Status Fit(const std::vector<Value>& column) override;
  void Transform(const Value& cell, double* out) const override;
  size_t num_features() const override { return 1; }
  bool is_row_local() const override { return true; }
  std::string name() const override { return "notnull_indicator"; }
  std::unique_ptr<FeatureEncoder> Clone() const override;
};

/// Applies one encoder per configured column and concatenates the blocks —
/// the scikit-learn ColumnTransformer analogue.
class ColumnTransformer {
 public:
  ColumnTransformer() = default;
  ColumnTransformer(const ColumnTransformer& other);
  ColumnTransformer& operator=(const ColumnTransformer& other);
  ColumnTransformer(ColumnTransformer&&) noexcept = default;
  ColumnTransformer& operator=(ColumnTransformer&&) noexcept = default;

  /// Registers `encoder` for `column`. Order of registration defines feature
  /// block order. `weight` multiplies the encoded block (scikit-learn's
  /// `transformer_weights`): distance-based models need commensurate block
  /// scales, and a wide normalized text block would otherwise be drowned out
  /// by a handful of unit-variance numeric features.
  void Add(std::string column, std::unique_ptr<FeatureEncoder> encoder,
           double weight = 1.0);

  /// Fits every encoder on its column of `table`.
  Status Fit(const Table& table);

  /// Encodes every row of `table` into an n x num_features() matrix.
  /// Precondition: fitted; table must contain all configured columns.
  Result<Matrix> Transform(const Table& table) const;

  /// Fit + Transform.
  Result<Matrix> FitTransform(const Table& table);

  /// Total encoded width. Precondition: fitted.
  size_t num_features() const;

  /// True when every registered encoder is row-local.
  bool is_row_local() const;

  bool fitted() const { return fitted_; }

  /// "column -> encoder" summary lines for plan rendering.
  std::string DebugString() const;

 private:
  struct Entry {
    std::string column;
    std::unique_ptr<FeatureEncoder> encoder;
    double weight = 1.0;
  };
  std::vector<Entry> entries_;
  bool fitted_ = false;
};

/// Builds a sensible default transformer for a table by inspecting its
/// schema: numeric columns get standardized NumericEncoders; string columns
/// with at most `max_onehot_cardinality` distinct values get one-hot
/// encoders; wider string columns are treated as text and hashed. Columns in
/// `exclude` (e.g. the label and id columns) are skipped. Fails when nothing
/// encodable remains.
Result<ColumnTransformer> MakeAutoTransformer(
    const Table& table, const std::vector<std::string>& exclude,
    size_t max_onehot_cardinality = 16, size_t text_hash_buckets = 32);

}  // namespace nde

#endif  // NDE_PIPELINE_ENCODERS_H_
