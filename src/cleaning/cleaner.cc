#include "cleaning/cleaner.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "ml/metrics.h"

namespace nde {

OracleCleaner::OracleCleaner(MlDataset clean) : clean_(std::move(clean)) {
  Status s = clean_.Validate();
  NDE_CHECK(s.ok()) << s.ToString();
}

Status OracleCleaner::Repair(MlDataset* dirty,
                             const std::vector<size_t>& indices) const {
  if (dirty == nullptr) {
    return Status::InvalidArgument("dirty dataset must be non-null");
  }
  if (dirty->size() != clean_.size() ||
      dirty->features.cols() != clean_.features.cols()) {
    return Status::InvalidArgument(
        "dirty dataset is not row-aligned with the oracle's ground truth");
  }
  for (size_t i : indices) {
    if (i >= clean_.size()) {
      return Status::OutOfRange(StrFormat("row %zu out of range", i));
    }
    dirty->labels[i] = clean_.labels[i];
    for (size_t j = 0; j < clean_.features.cols(); ++j) {
      dirty->features(i, j) = clean_.features(i, j);
    }
  }
  return Status::OK();
}

Result<IterativeCleaningResult> IterativeClean(
    const CleaningStrategy& strategy, MlDataset dirty,
    const OracleCleaner& oracle, const MlDataset& validation,
    const MlDataset& test, const ClassifierFactory& factory,
    const IterativeCleaningOptions& options) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  IterativeCleaningResult result;
  NDE_ASSIGN_OR_RETURN(double baseline,
                       TrainAndScore(factory, dirty, test));
  result.accuracy_curve.push_back(baseline);

  std::unordered_set<size_t> already_cleaned;
  size_t remaining = std::min(options.budget, dirty.size());
  uint64_t round_seed = options.seed;
  while (remaining > 0) {
    NDE_ASSIGN_OR_RETURN(std::vector<size_t> ranking,
                         strategy.rank(dirty, validation, round_seed));
    ++round_seed;
    std::vector<size_t> batch;
    for (size_t idx : ranking) {
      if (batch.size() >= std::min(options.batch_size, remaining)) break;
      if (already_cleaned.count(idx) > 0) continue;
      batch.push_back(idx);
    }
    if (batch.empty()) break;  // Everything reachable is already cleaned.
    NDE_RETURN_IF_ERROR(oracle.Repair(&dirty, batch));
    for (size_t idx : batch) {
      already_cleaned.insert(idx);
      result.cleaned_order.push_back(idx);
    }
    remaining -= batch.size();
    NDE_ASSIGN_OR_RETURN(double accuracy,
                         TrainAndScore(factory, dirty, test));
    result.accuracy_curve.push_back(accuracy);
  }
  return result;
}

}  // namespace nde
