#ifndef NDE_CLEANING_CLEANER_H_
#define NDE_CLEANING_CLEANER_H_

#include <vector>

#include "cleaning/strategies.h"
#include "common/result.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// The "oracle" cleaning function of the hands-on session: it holds the
/// ground-truth dataset and restores requested rows (label and features) in
/// the participant's dirty copy.
class OracleCleaner {
 public:
  /// `clean` is the ground truth, row-aligned with the dirty dataset.
  explicit OracleCleaner(MlDataset clean);

  /// Restores the given rows of `dirty` to their ground-truth state.
  /// Out-of-range indices are an error; duplicates are fine (idempotent).
  Status Repair(MlDataset* dirty, const std::vector<size_t>& indices) const;

  const MlDataset& clean() const { return clean_; }

 private:
  MlDataset clean_;
};

/// Trace of an iterative prioritized-cleaning run (the Figure 2 "task for
/// attendees": re-rank, clean a batch, measure, repeat).
struct IterativeCleaningResult {
  /// accuracy_curve[b] = test accuracy after cleaning b batches
  /// (accuracy_curve[0] is the dirty baseline).
  std::vector<double> accuracy_curve;
  /// All indices cleaned, in cleaning order.
  std::vector<size_t> cleaned_order;
};

struct IterativeCleaningOptions {
  size_t budget = 50;       ///< total rows that may be cleaned
  size_t batch_size = 10;   ///< rows cleaned between re-rankings
  uint64_t seed = 42;
};

/// Runs iterative prioritized cleaning: rank suspects on the current dirty
/// data with `strategy`, repair the top `batch_size` not-yet-cleaned rows via
/// the oracle, retrain and record test accuracy, and repeat until the budget
/// is exhausted.
Result<IterativeCleaningResult> IterativeClean(
    const CleaningStrategy& strategy, MlDataset dirty,
    const OracleCleaner& oracle, const MlDataset& validation,
    const MlDataset& test, const ClassifierFactory& factory,
    const IterativeCleaningOptions& options = {});

}  // namespace nde

#endif  // NDE_CLEANING_CLEANER_H_
