#include "cleaning/challenge.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/synthetic.h"
#include "ml/metrics.h"

namespace nde {

DataDebuggingChallenge::DataDebuggingChallenge(MlDataset clean_train,
                                               MlDataset validation,
                                               MlDataset hidden_test,
                                               ClassifierFactory factory,
                                               const ChallengeOptions& options)
    : clean_train_(std::move(clean_train)),
      validation_(std::move(validation)),
      hidden_test_(std::move(hidden_test)),
      factory_(std::move(factory)),
      options_(options) {
  NDE_CHECK(factory_ != nullptr);
  dirty_train_ = clean_train_;
  Rng rng(options_.seed);
  std::vector<size_t> label_errors =
      InjectLabelErrors(&dirty_train_, options_.label_error_fraction, &rng);
  std::vector<size_t> noisy = InjectFeatureNoise(
      &dirty_train_, options_.feature_noise_fraction, 3.0, &rng);
  std::unordered_set<size_t> all(label_errors.begin(), label_errors.end());
  all.insert(noisy.begin(), noisy.end());
  corrupted_.assign(all.begin(), all.end());
  std::sort(corrupted_.begin(), corrupted_.end());

  Result<double> baseline = Score(dirty_train_);
  NDE_CHECK(baseline.ok()) << baseline.status().ToString();
  baseline_score_ = baseline.value();
}

Result<double> DataDebuggingChallenge::Score(const MlDataset& train) const {
  return TrainAndScore(factory_, train, hidden_test_);
}

DataDebuggingChallenge::ParticipantState& DataDebuggingChallenge::GetOrCreate(
    const std::string& participant) {
  auto it = participants_.find(participant);
  if (it == participants_.end()) {
    ParticipantState state;
    state.working_copy = dirty_train_;
    state.cleaned.assign(dirty_train_.size(), false);
    state.best_score = baseline_score_;
    it = participants_.emplace(participant, std::move(state)).first;
  }
  return it->second;
}

Result<double> DataDebuggingChallenge::SubmitCleaningRequest(
    const std::string& participant, const std::vector<size_t>& ids) {
  ParticipantState& state = GetOrCreate(participant);
  // Count only not-yet-cleaned ids against the budget.
  std::unordered_set<size_t> fresh;
  for (size_t id : ids) {
    if (id >= dirty_train_.size()) {
      return Status::OutOfRange(StrFormat("tuple id %zu out of range", id));
    }
    if (!state.cleaned[id]) fresh.insert(id);
  }
  if (state.budget_used + fresh.size() > options_.cleaning_budget) {
    return Status::FailedPrecondition(
        StrFormat("budget exceeded: %zu new tuples requested, %zu remaining",
                  fresh.size(),
                  options_.cleaning_budget - state.budget_used));
  }
  for (size_t id : fresh) {
    state.cleaned[id] = true;
    state.working_copy.labels[id] = clean_train_.labels[id];
    for (size_t j = 0; j < clean_train_.features.cols(); ++j) {
      state.working_copy.features(id, j) = clean_train_.features(id, j);
    }
  }
  state.budget_used += fresh.size();
  state.tuples_cleaned += fresh.size();
  NDE_ASSIGN_OR_RETURN(double score, Score(state.working_copy));
  if (score > state.best_score) state.best_score = score;
  return score;
}

size_t DataDebuggingChallenge::RemainingBudget(
    const std::string& participant) const {
  auto it = participants_.find(participant);
  if (it == participants_.end()) return options_.cleaning_budget;
  return options_.cleaning_budget - it->second.budget_used;
}

std::string DataDebuggingChallenge::LeaderboardEntry::ToString() const {
  return StrFormat("%-20s score=%.4f cleaned=%zu", participant.c_str(),
                   best_score, tuples_cleaned);
}

std::vector<DataDebuggingChallenge::LeaderboardEntry>
DataDebuggingChallenge::Leaderboard() const {
  std::vector<LeaderboardEntry> entries;
  entries.reserve(participants_.size());
  for (const auto& [name, state] : participants_) {
    entries.push_back(
        LeaderboardEntry{name, state.best_score, state.tuples_cleaned});
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeaderboardEntry& a, const LeaderboardEntry& b) {
              if (a.best_score != b.best_score) {
                return a.best_score > b.best_score;
              }
              if (a.tuples_cleaned != b.tuples_cleaned) {
                return a.tuples_cleaned < b.tuples_cleaned;
              }
              return a.participant < b.participant;
            });
  return entries;
}

}  // namespace nde
