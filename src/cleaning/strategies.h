#ifndef NDE_CLEANING_STRATEGIES_H_
#define NDE_CLEANING_STRATEGIES_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// Ranks the training examples of `dirty` by cleaning priority (most suspect
/// first) using the validation set as the quality signal.
using RankingFn = std::function<Result<std::vector<size_t>>(
    const MlDataset& dirty, const MlDataset& validation, uint64_t seed)>;

/// A named prioritization strategy for data cleaning.
struct CleaningStrategy {
  std::string name;
  RankingFn rank;
};

/// Individual strategies. All return a full ranking of the n training rows.

/// Uniform random order (the baseline every importance method must beat).
CleaningStrategy RandomStrategy();

/// Ascending exact KNN-Shapley value: most negative (harmful) first.
CleaningStrategy KnnShapleyStrategy(size_t k = 5);

/// Ascending leave-one-out value under a KNN utility (cheap retrains).
CleaningStrategy LooStrategy(size_t k = 5);

/// Ascending influence-function value (binary tasks only).
CleaningStrategy InfluenceStrategy();

/// Ascending cross-validated self-confidence of the assigned label.
CleaningStrategy SelfConfidenceStrategy(size_t folds = 5);

/// Ascending area-under-the-margin score.
CleaningStrategy AumStrategy();

/// Ascending truncated-Monte-Carlo Shapley value with a KNN proxy utility.
CleaningStrategy TmcShapleyStrategy(size_t permutations = 30, size_t k = 5);

/// The standard benchmark panel (E4/E6): random, loo, knn_shapley,
/// influence, self_confidence, aum.
std::vector<CleaningStrategy> StandardStrategies();

/// Helper: indices of `scores` sorted ascending (ties by index). Exposed for
/// custom strategies.
std::vector<size_t> AscendingOrder(const std::vector<double>& scores);

/// Precision@k of a ranking against the true corrupted set: the fraction of
/// the first k ranked indices that are truly corrupted.
double PrecisionAtK(const std::vector<size_t>& ranking,
                    const std::vector<size_t>& corrupted, size_t k);

}  // namespace nde

#endif  // NDE_CLEANING_STRATEGIES_H_
