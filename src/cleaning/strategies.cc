#include "cleaning/strategies.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "importance/game_values.h"
#include "importance/influence.h"
#include "importance/knn_shapley.h"
#include "importance/label_scores.h"
#include "importance/utility.h"
#include "ml/knn.h"

namespace nde {

std::vector<size_t> AscendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  return order;
}

CleaningStrategy RandomStrategy() {
  return CleaningStrategy{
      "random",
      [](const MlDataset& dirty, const MlDataset& validation,
         uint64_t seed) -> Result<std::vector<size_t>> {
        (void)validation;
        Rng rng(seed);
        return rng.Permutation(dirty.size());
      }};
}

CleaningStrategy KnnShapleyStrategy(size_t k) {
  return CleaningStrategy{
      "knn_shapley",
      [k](const MlDataset& dirty, const MlDataset& validation,
          uint64_t seed) -> Result<std::vector<size_t>> {
        (void)seed;
        return AscendingOrder(KnnShapleyValues(dirty, validation, k));
      }};
}

CleaningStrategy LooStrategy(size_t k) {
  return CleaningStrategy{
      "loo",
      [k](const MlDataset& dirty, const MlDataset& validation,
          uint64_t seed) -> Result<std::vector<size_t>> {
        (void)seed;
        ModelAccuracyUtility utility(
            [k]() { return std::make_unique<KnnClassifier>(k); }, dirty,
            validation);
        NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                             LeaveOneOutValues(utility));
        return AscendingOrder(values);
      }};
}

CleaningStrategy InfluenceStrategy() {
  return CleaningStrategy{
      "influence",
      [](const MlDataset& dirty, const MlDataset& validation,
         uint64_t seed) -> Result<std::vector<size_t>> {
        (void)seed;
        NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                             InfluenceOnValidationLoss(dirty, validation));
        return AscendingOrder(values);
      }};
}

CleaningStrategy SelfConfidenceStrategy(size_t folds) {
  return CleaningStrategy{
      "self_confidence",
      [folds](const MlDataset& dirty, const MlDataset& validation,
              uint64_t seed) -> Result<std::vector<size_t>> {
        (void)validation;
        SelfConfidenceOptions options;
        options.num_folds = folds;
        options.seed = seed;
        NDE_ASSIGN_OR_RETURN(
            std::vector<double> scores,
            SelfConfidenceScores(
                []() { return std::make_unique<KnnClassifier>(5); }, dirty,
                options));
        return AscendingOrder(scores);
      }};
}

CleaningStrategy AumStrategy() {
  return CleaningStrategy{
      "aum",
      [](const MlDataset& dirty, const MlDataset& validation,
         uint64_t seed) -> Result<std::vector<size_t>> {
        (void)validation;
        (void)seed;
        NDE_ASSIGN_OR_RETURN(std::vector<double> scores, AumScores(dirty));
        return AscendingOrder(scores);
      }};
}

CleaningStrategy TmcShapleyStrategy(size_t permutations, size_t k) {
  return CleaningStrategy{
      "tmc_shapley",
      [permutations, k](const MlDataset& dirty, const MlDataset& validation,
                        uint64_t seed) -> Result<std::vector<size_t>> {
        ModelAccuracyUtility utility(
            [k]() { return std::make_unique<KnnClassifier>(k); }, dirty,
            validation);
        TmcShapleyOptions options;
        options.num_permutations = permutations;
        options.seed = seed;
        NDE_ASSIGN_OR_RETURN(ImportanceEstimate estimate,
                             TmcShapleyValues(utility, options));
        return AscendingOrder(estimate.values);
      }};
}

std::vector<CleaningStrategy> StandardStrategies() {
  std::vector<CleaningStrategy> strategies;
  strategies.push_back(RandomStrategy());
  strategies.push_back(LooStrategy());
  strategies.push_back(KnnShapleyStrategy());
  strategies.push_back(InfluenceStrategy());
  strategies.push_back(SelfConfidenceStrategy());
  strategies.push_back(AumStrategy());
  return strategies;
}

double PrecisionAtK(const std::vector<size_t>& ranking,
                    const std::vector<size_t>& corrupted, size_t k) {
  if (k == 0 || ranking.empty()) return 0.0;
  std::unordered_set<size_t> truth(corrupted.begin(), corrupted.end());
  size_t limit = std::min(k, ranking.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (truth.count(ranking[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(limit);
}

}  // namespace nde
