#ifndef NDE_CLEANING_IMPUTATION_H_
#define NDE_CLEANING_IMPUTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace nde {

/// Best-guess repair of missing values in source tables — the "traditional
/// data cleaning" baseline the paper contrasts with uncertainty-aware
/// learning: imputation produces a single plausible world and discards the
/// information that it was ever uncertain.
///
/// Imputers follow the fit/transform protocol: `Fit` learns statistics from
/// a (possibly incomplete) column, `Impute` fills the nulls of a column of
/// the same type.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Learns imputation statistics from the non-null cells of `column`.
  /// Fails when no usable cells exist or the column type is unsupported.
  virtual Status Fit(const std::vector<Value>& column) = 0;

  /// Returns the fill value for a null cell. Precondition: fitted.
  virtual Value FillValue() const = 0;

  virtual std::string name() const = 0;
};

/// Fills numeric nulls with the mean of the observed values.
class MeanImputer : public Imputer {
 public:
  Status Fit(const std::vector<Value>& column) override;
  Value FillValue() const override;
  std::string name() const override { return "mean"; }

 private:
  double mean_ = 0.0;
  bool is_int_ = false;
  bool fitted_ = false;
};

/// Fills numeric nulls with the median of the observed values (robust to the
/// outlier errors this library injects).
class MedianImputer : public Imputer {
 public:
  Status Fit(const std::vector<Value>& column) override;
  Value FillValue() const override;
  std::string name() const override { return "median"; }

 private:
  double median_ = 0.0;
  bool is_int_ = false;
  bool fitted_ = false;
};

/// Fills nulls of any column type with the most frequent observed value
/// (mode); ties break toward the smaller value for determinism.
class MostFrequentImputer : public Imputer {
 public:
  Status Fit(const std::vector<Value>& column) override;
  Value FillValue() const override;
  std::string name() const override { return "most_frequent"; }

 private:
  Value mode_;
  bool fitted_ = false;
};

/// Fills the nulls of `column` in `table` using `imputer` (fit on the same
/// column's observed values). Returns the repaired row indices.
Result<std::vector<size_t>> ImputeColumn(Table* table,
                                         const std::string& column,
                                         Imputer* imputer);

/// KNN imputation for a numeric column: each null cell is filled with the
/// mean of that column over the `k` nearest rows, where distance is computed
/// over the given fully-observed numeric `feature_columns`. Falls back to
/// the column mean when no neighbors are usable. Returns repaired rows.
Result<std::vector<size_t>> KnnImputeColumn(
    Table* table, const std::string& column,
    const std::vector<std::string>& feature_columns, size_t k);

}  // namespace nde

#endif  // NDE_CLEANING_IMPUTATION_H_
