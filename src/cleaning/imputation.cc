#include "cleaning/imputation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace nde {

namespace {

/// Collects the non-null numeric values of a column; fails on strings.
Result<std::vector<double>> NumericValues(const std::vector<Value>& column,
                                          bool* is_int) {
  std::vector<double> values;
  *is_int = true;
  for (const Value& v : column) {
    if (v.is_null()) continue;
    if (v.is_string()) {
      return Status::InvalidArgument("numeric imputer on a string column");
    }
    if (!v.is_int64()) *is_int = false;
    values.push_back(v.AsNumeric());
  }
  if (values.empty()) {
    return Status::InvalidArgument("no observed values to fit on");
  }
  return values;
}

Value MakeNumericValue(double value, bool is_int) {
  if (is_int) return Value(static_cast<int64_t>(std::llround(value)));
  return Value(value);
}

}  // namespace

Status MeanImputer::Fit(const std::vector<Value>& column) {
  NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                       NumericValues(column, &is_int_));
  double total = 0.0;
  for (double v : values) total += v;
  mean_ = total / static_cast<double>(values.size());
  fitted_ = true;
  return Status::OK();
}

Value MeanImputer::FillValue() const {
  NDE_CHECK(fitted_);
  return MakeNumericValue(mean_, is_int_);
}

Status MedianImputer::Fit(const std::vector<Value>& column) {
  NDE_ASSIGN_OR_RETURN(std::vector<double> values,
                       NumericValues(column, &is_int_));
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid),
                   values.end());
  median_ = values[mid];
  if (values.size() % 2 == 0) {
    double below = *std::max_element(
        values.begin(), values.begin() + static_cast<ptrdiff_t>(mid));
    median_ = 0.5 * (median_ + below);
  }
  fitted_ = true;
  return Status::OK();
}

Value MedianImputer::FillValue() const {
  NDE_CHECK(fitted_);
  return MakeNumericValue(median_, is_int_);
}

Status MostFrequentImputer::Fit(const std::vector<Value>& column) {
  std::map<Value, size_t> counts;  // Ordered: deterministic tie-break.
  for (const Value& v : column) {
    if (!v.is_null()) ++counts[v];
  }
  if (counts.empty()) {
    return Status::InvalidArgument("no observed values to fit on");
  }
  size_t best = 0;
  for (const auto& [value, count] : counts) {
    if (count > best) {
      best = count;
      mode_ = value;
    }
  }
  fitted_ = true;
  return Status::OK();
}

Value MostFrequentImputer::FillValue() const {
  NDE_CHECK(fitted_);
  return mode_;
}

Result<std::vector<size_t>> ImputeColumn(Table* table,
                                         const std::string& column,
                                         Imputer* imputer) {
  if (table == nullptr || imputer == nullptr) {
    return Status::InvalidArgument("table and imputer must be non-null");
  }
  NDE_ASSIGN_OR_RETURN(size_t col, table->schema().FieldIndex(column));
  NDE_RETURN_IF_ERROR(imputer->Fit(table->column(col)));
  Value fill = imputer->FillValue();
  std::vector<size_t> repaired;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (table->At(r, col).is_null()) {
      NDE_RETURN_IF_ERROR(table->SetCell(r, col, fill));
      repaired.push_back(r);
    }
  }
  return repaired;
}

Result<std::vector<size_t>> KnnImputeColumn(
    Table* table, const std::string& column,
    const std::vector<std::string>& feature_columns, size_t k) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must be non-null");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  NDE_ASSIGN_OR_RETURN(size_t target, table->schema().FieldIndex(column));
  if (table->schema().field(target).type == DataType::kString) {
    return Status::InvalidArgument("KNN imputation targets numeric columns");
  }
  std::vector<size_t> feature_idx;
  for (const std::string& name : feature_columns) {
    NDE_ASSIGN_OR_RETURN(size_t idx, table->schema().FieldIndex(name));
    if (table->schema().field(idx).type == DataType::kString) {
      return Status::InvalidArgument(
          StrFormat("feature column '%s' must be numeric", name.c_str()));
    }
    feature_idx.push_back(idx);
  }
  if (feature_idx.empty()) {
    return Status::InvalidArgument("KNN imputation needs feature columns");
  }

  size_t n = table->num_rows();
  // Observed donor rows: target non-null and all features non-null.
  std::vector<size_t> donors;
  for (size_t r = 0; r < n; ++r) {
    if (table->At(r, target).is_null()) continue;
    bool usable = true;
    for (size_t f : feature_idx) {
      if (table->At(r, f).is_null()) {
        usable = false;
        break;
      }
    }
    if (usable) donors.push_back(r);
  }
  if (donors.empty()) {
    return Status::FailedPrecondition("no complete donor rows available");
  }
  double donor_mean = 0.0;
  for (size_t r : donors) donor_mean += table->At(r, target).AsNumeric();
  donor_mean /= static_cast<double>(donors.size());
  bool is_int = table->schema().field(target).type == DataType::kInt64;

  std::vector<size_t> repaired;
  for (size_t r = 0; r < n; ++r) {
    if (!table->At(r, target).is_null()) continue;
    // Distance over the observed features of this row.
    std::vector<std::pair<double, size_t>> candidates;
    for (size_t donor : donors) {
      double dist = 0.0;
      bool comparable = true;
      for (size_t f : feature_idx) {
        const Value& mine = table->At(r, f);
        if (mine.is_null()) {
          comparable = false;
          break;
        }
        double diff = mine.AsNumeric() - table->At(donor, f).AsNumeric();
        dist += diff * diff;
      }
      if (comparable) candidates.push_back({dist, donor});
    }
    double fill = donor_mean;
    if (!candidates.empty()) {
      size_t take = std::min(k, candidates.size());
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<ptrdiff_t>(take),
                        candidates.end());
      double total = 0.0;
      for (size_t i = 0; i < take; ++i) {
        total += table->At(candidates[i].second, target).AsNumeric();
      }
      fill = total / static_cast<double>(take);
    }
    Value cell = is_int ? Value(static_cast<int64_t>(std::llround(fill)))
                        : Value(fill);
    NDE_RETURN_IF_ERROR(table->SetCell(r, target, cell));
    repaired.push_back(r);
  }
  return repaired;
}

}  // namespace nde
