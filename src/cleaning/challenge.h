#ifndef NDE_CLEANING_CHALLENGE_H_
#define NDE_CLEANING_CHALLENGE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// Configuration for the data-debugging challenge of Section 3.2.
struct ChallengeOptions {
  double label_error_fraction = 0.15;  ///< hidden label flips in the train set
  double feature_noise_fraction = 0.05;
  size_t cleaning_budget = 40;         ///< per-participant oracle budget
  uint64_t seed = 42;
};

/// The final hands-on exercise: participants see a dirty training set, a
/// validation set and a classifier, and may ask a budget-limited oracle to
/// clean specific tuples. The oracle retrains on the partially cleaned data
/// and reports the metric on a *hidden* test set; a leaderboard tracks the
/// best submissions.
class DataDebuggingChallenge {
 public:
  /// Builds the challenge from clean splits; errors are injected internally
  /// (the participants never see which rows were corrupted).
  DataDebuggingChallenge(MlDataset clean_train, MlDataset validation,
                         MlDataset hidden_test, ClassifierFactory factory,
                         const ChallengeOptions& options = {});

  /// The corrupted training data participants work with.
  const MlDataset& dirty_train() const { return dirty_train_; }
  const MlDataset& validation() const { return validation_; }

  /// Hidden-test accuracy of the model trained on the *uncleaned* data.
  double BaselineScore() const { return baseline_score_; }

  /// Asks the oracle to clean `ids` for `participant`. Cleaning is
  /// cumulative per participant; ids beyond the remaining budget are
  /// rejected (nothing is cleaned). Returns the hidden-test accuracy after
  /// retraining on the participant's partially cleaned copy.
  Result<double> SubmitCleaningRequest(const std::string& participant,
                                       const std::vector<size_t>& ids);

  /// Remaining oracle budget for `participant`.
  size_t RemainingBudget(const std::string& participant) const;

  struct LeaderboardEntry {
    std::string participant;
    double best_score = 0.0;
    size_t tuples_cleaned = 0;

    std::string ToString() const;
  };

  /// Best score per participant, descending (ties: fewer cleaned tuples
  /// first, then name).
  std::vector<LeaderboardEntry> Leaderboard() const;

  /// Ground-truth corrupted indices (for post-hoc analysis / scoring only —
  /// a real deployment would keep this private).
  const std::vector<size_t>& corrupted_indices() const { return corrupted_; }

 private:
  struct ParticipantState {
    MlDataset working_copy;
    std::vector<bool> cleaned;
    size_t budget_used = 0;
    double best_score = 0.0;
    size_t tuples_cleaned = 0;
  };

  Result<double> Score(const MlDataset& train) const;
  ParticipantState& GetOrCreate(const std::string& participant);

  MlDataset clean_train_;
  MlDataset dirty_train_;
  MlDataset validation_;
  MlDataset hidden_test_;
  ClassifierFactory factory_;
  ChallengeOptions options_;
  std::vector<size_t> corrupted_;
  double baseline_score_ = 0.0;
  std::map<std::string, ParticipantState> participants_;
};

}  // namespace nde

#endif  // NDE_CLEANING_CHALLENGE_H_
