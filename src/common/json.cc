#include "common/json.h"

#include <cstdlib>

#include "common/string_util.h"

namespace nde {
namespace json {

const Value* Value::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Value Value::Null() {
  Value v;
  v.raw_ = "null";
  return v;
}

Value Value::Bool(bool value) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  v.raw_ = value ? "true" : "false";
  return v;
}

Value Value::Number(double value, std::string raw) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  v.raw_ = std::move(raw);
  return v;
}

Value Value::String(std::string value) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

namespace {

/// Recursive-descent parser over a borrowed string. Depth is capped so a
/// pathological request body cannot exhaust the serving thread's stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    NDE_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the JSON document");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at byte %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::string::traits_type::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      NDE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::String(std::move(s));
    }
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("null")) return Value::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    if (!ConsumeDigits()) return Error("malformed number");
    if (Consume('.')) {
      if (!ConsumeDigits()) return Error("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("malformed number");
    }
    std::string raw = text_.substr(start, pos_ - start);
    // Evaluated before the call: the moved-from `raw` must not feed strtod
    // (argument evaluation order is unspecified).
    double value = std::strtod(raw.c_str(), nullptr);
    return Value::Number(value, std::move(raw));
  }

  bool ConsumeDigits() {
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          NDE_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair: a leading surrogate must be followed by \uDCxx.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeWord("\\u")) return Error("unpaired surrogate");
            NDE_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", e));
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("malformed \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseObject(size_t depth) {
    Consume('{');
    std::vector<std::pair<std::string, Value>> members;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      NDE_ASSIGN_OR_RETURN(std::string key, ParseString());
      for (const auto& [existing, unused] : members) {
        if (existing == key) {
          return Error(StrFormat("duplicate object key '%s'", key.c_str()));
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      NDE_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(size_t depth) {
    Consume('[');
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      SkipWhitespace();
      NDE_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace json
}  // namespace nde
