#ifndef NDE_COMMON_RNG_H_
#define NDE_COMMON_RNG_H_

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/check.h"

namespace nde {

namespace internal {

/// One splitmix64 step: advances `*state` and returns the next output. The
/// seeding primitive shared by Rng and SeedSequence (common/parallel.h).
uint64_t SplitMix64(uint64_t* state);

}  // namespace internal

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library draws from an
/// explicitly seeded `Rng`, so all experiments and tests are reproducible
/// bit-for-bit across runs and platforms.
///
/// Not cryptographically secure; not thread-safe. Each Rng is owned by one
/// thread at a time — the thread that constructed or last Reseed()-ed it —
/// and debug builds abort (NDE_DCHECK) on draws from any other thread.
/// Parallel code derives one Rng per task via `SeedSequence` instead of
/// sharing a generator.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-seeds in place, restarting the stream. Also transfers debug-build
  /// thread ownership to the calling thread.
  void Reseed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double NextUniform(double lo, double hi);

  /// Standard normal deviate (Box-Muller; consumes two uniforms per pair).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation (stddev >= 0).
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// `weights[i]`. Precondition: weights non-empty, all non-negative, sum > 0.
  size_t NextCategorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    NDE_CHECK(items != nullptr);
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});
    Shuffle(&perm);
    return perm;
  }

  /// Samples `k` distinct indices from {0, ..., n-1} uniformly at random
  /// (Floyd's algorithm when k << n; partial shuffle otherwise). The returned
  /// order is unspecified. Precondition: k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
#ifndef NDEBUG
  std::thread::id owner_;  ///< Set by Reseed; draws NDE_DCHECK against it.
#endif
};

}  // namespace nde

#endif  // NDE_COMMON_RNG_H_
