#include "common/arena.h"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <utility>

namespace nde {

namespace {

/// True for the power-of-two alignments Allocate accepts.
bool ValidAlignment(size_t alignment) {
  return alignment > 0 && alignment <= Arena::kMaxAlignment &&
         (alignment & (alignment - 1)) == 0;
}

}  // namespace

Arena::Arena(size_t min_chunk_bytes)
    : min_chunk_bytes_(std::max<size_t>(min_chunk_bytes, 64)) {}

Arena::~Arena() {
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.data, std::align_val_t{kMaxAlignment});
  }
}

void Arena::AddChunk(size_t bytes) {
  // Geometric growth from the last chunk keeps the chunk count logarithmic
  // in total demand; the cap bounds the retained high-water mark.
  size_t capacity = chunks_.empty() ? min_chunk_bytes_
                                    : std::min(chunks_.back().capacity * 2,
                                               kMaxChunkBytes);
  capacity = std::max(capacity, bytes);
  Chunk chunk;
  chunk.data = static_cast<char*>(
      ::operator new(capacity, std::align_val_t{kMaxAlignment}));
  chunk.capacity = capacity;
  chunks_.push_back(chunk);
  bytes_reserved_ += capacity;
  head_used_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  NDE_CHECK(ValidAlignment(alignment)) << "bad arena alignment " << alignment;
  if (bytes == 0) bytes = 1;  // Distinct non-null pointers, like operator new.
  size_t aligned = (head_used_ + alignment - 1) & ~(alignment - 1);
  if (chunks_.empty() || aligned + bytes > chunks_.back().capacity) {
    AddChunk(bytes);
    aligned = 0;  // Chunk starts are kMaxAlignment-aligned.
  }
  char* out = chunks_.back().data + aligned;
  head_used_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return out;
}

void Arena::Reset() {
  if (chunks_.size() > 1) {
    // Keep only the largest chunk: after one warm-up cycle the whole working
    // set fits in it and Allocate never grows again.
    auto largest = std::max_element(
        chunks_.begin(), chunks_.end(),
        [](const Chunk& a, const Chunk& b) { return a.capacity < b.capacity; });
    Chunk keep = *largest;
    for (Chunk& chunk : chunks_) {
      if (chunk.data != keep.data) {
        ::operator delete(chunk.data, std::align_val_t{kMaxAlignment});
        bytes_reserved_ -= chunk.capacity;
      }
    }
    chunks_.clear();
    chunks_.push_back(keep);
  }
  head_used_ = 0;
  bytes_allocated_ = 0;
}

std::unique_ptr<Arena> ArenaPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<Arena> arena = std::move(free_.back());
      free_.pop_back();
      arena->Reset();
      return arena;
    }
  }
  return std::make_unique<Arena>(min_chunk_bytes_);
}

void ArenaPool::Release(std::unique_ptr<Arena> arena) {
  if (arena == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(arena));
}

size_t ArenaPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace nde
