#ifndef NDE_COMMON_STATUS_H_
#define NDE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace nde {

/// Machine-readable classification of an error. Mirrors the canonical error
/// space used by production database engines: a small, closed set of codes
/// that callers can branch on, plus a free-form message for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  /// Transient failure (flaky backend, lost connection): safe to retry with
  /// backoff. The estimators' retry policy keys off this code.
  kUnavailable = 9,
  /// Out of memory/quota/capacity. Also retryable (pressure may pass).
  kResourceExhausted = 10,
  /// The caller asked for the operation to stop (cooperative cancellation,
  /// e.g. DELETE /jobs/<id> raising EstimatorOptions::cancel). Not retryable:
  /// the work was abandoned on purpose.
  kCancelled = 11,
};

/// Returns the canonical lowercase name of a status code ("ok",
/// "invalid_argument", ...). Stable; safe to use in logs and golden tests.
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: parses a canonical lowercase name. Returns
/// false (leaving `*code` untouched) for unknown names. Used by the failpoint
/// spec parser, so operators can write `error(io_error:disk gone)`.
bool StatusCodeFromString(const std::string& text, StatusCode* code);

/// True for codes that describe transient conditions a caller may retry
/// (kUnavailable, kResourceExhausted). Everything else is permanent.
bool IsRetryable(StatusCode code);

/// Result of an operation that can fail without it being a programming error.
///
/// `Status` is returned by value, is cheap to move, and never throws. The
/// library reserves exceptions-free semantics across its public API: expected
/// failures (bad input, missing column, I/O trouble) travel through `Status`
/// or `Result<T>`, while invariant violations abort via `NDE_CHECK`.
///
/// Typical use:
///
///     Status s = table.Validate();
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An empty message is
  /// allowed but discouraged for non-OK codes.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers; prefer these over the raw constructor at call sites.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>"; intended for logs and error reporting.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return `Status` (or a type constructible from it, such as `Result<T>`).
#define NDE_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::nde::Status nde_status_tmp_ = (expr);        \
    if (!nde_status_tmp_.ok()) return nde_status_tmp_; \
  } while (false)

}  // namespace nde

#endif  // NDE_COMMON_STATUS_H_
