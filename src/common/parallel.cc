#include "common/parallel.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "telemetry/telemetry.h"

namespace nde {

namespace {

std::atomic<size_t> g_default_num_threads{0};  ///< 0 = hardware concurrency

}  // namespace

size_t HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t DefaultNumThreads() {
  size_t configured = g_default_num_threads.load(std::memory_order_relaxed);
  return configured == 0 ? HardwareConcurrency() : configured;
}

void SetDefaultNumThreads(size_t num_threads) {
  g_default_num_threads.store(num_threads, std::memory_order_relaxed);
}

size_t ResolveNumThreads(size_t num_threads) {
  return num_threads == 0 ? DefaultNumThreads() : num_threads;
}

size_t PlannedNumThreads(size_t range, size_t num_threads) {
  return std::max<size_t>(1, std::min(ResolveNumThreads(num_threads), range));
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = ResolveNumThreads(num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  NDE_CHECK(task != nullptr);
  // Explicit context hop: capture the submitter's TraceContext so spans,
  // logs, and labeled metrics produced by the worker attribute to the
  // submitting request/job. Purely observational (the wrapper adds no
  // synchronization and never touches task results), so the bit-determinism
  // contract is unaffected. Tasks submitted outside any context skip the
  // wrapper entirely.
  if (HasTraceContext()) {
    task = [context = CurrentTraceContext(),
            inner = std::move(task)]() mutable {
      ScopedTraceContext scope(std::move(context));
      inner();
    };
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NDE_CHECK(!shutdown_) << "Submit after ThreadPool destruction began";
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  NDE_METRIC_GAUGE_SET("parallel.queue_depth", depth);
  (void)depth;  // Only consumed by the metric when telemetry is compiled in.
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
      // Drain-on-destruction: keep popping until the queue is empty even
      // after shutdown began; only an empty queue ends the loop.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
      NDE_METRIC_GAUGE_SET("parallel.queue_depth", queue_.size());
    }
    {
      NDE_TRACE_SPAN("pool_task", "parallel");
      try {
        // Chaos hook: an armed `threadpool.task` failpoint kills this task
        // before it runs. The throw lands in the pool's normal error latch,
        // so injection exercises exactly the propagation path a real task
        // exception takes (rethrown by the next WaitIdle).
        if (failpoint::AnyArmed()) {
          failpoint::Outcome fp = failpoint::Fire("threadpool.task");
          if (fp.fired()) throw failpoint::InjectedFault(fp.status);
        }
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      NDE_METRIC_COUNT("parallel.tasks_executed", 1);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) idle_cv_.notify_all();
    }
  }
}

size_t ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body, size_t num_threads,
                   const char* label) {
  if (end <= begin) return 1;
  size_t range = end - begin;
  size_t threads = PlannedNumThreads(range, num_threads);
  if (threads <= 1) {
    NDE_TRACE_SPAN_VAR(span, label, "parallel");
    NDE_SPAN_ARG(span, "tasks", static_cast<int64_t>(range));
    NDE_SPAN_ARG(span, "threads", int64_t{1});
    for (size_t i = begin; i < end; ++i) body(i);
    return 1;
  }

  NDE_TRACE_SPAN_VAR(span, label, "parallel");
  NDE_SPAN_ARG(span, "tasks", static_cast<int64_t>(range));
  NDE_SPAN_ARG(span, "threads", static_cast<int64_t>(threads));
  std::atomic<size_t> next{begin};
  std::atomic<bool> failed{false};
  ThreadPool pool(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.Submit([&next, &failed, &body, end, label] {
      NDE_TRACE_SPAN_VAR(worker_span, label, "parallel");
      size_t executed = 0;
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) break;
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        try {
          body(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // Captured by the pool, re-thrown from WaitIdle below.
        }
        ++executed;
      }
      NDE_SPAN_ARG(worker_span, "tasks_executed",
                   static_cast<int64_t>(executed));
    });
  }
  pool.WaitIdle();  // Re-throws the first body exception, if any.
  return threads;
}

Result<size_t> TryParallelFor(size_t begin, size_t end,
                              const std::function<void(size_t)>& body,
                              size_t num_threads, const char* label) {
  try {
    return ParallelFor(begin, end, body, num_threads, label);
  } catch (const failpoint::InjectedFault& fault) {
    return fault.status();
  } catch (const std::exception& e) {
    return Status::Internal(
        StrFormat("parallel task '%s' failed: %s", label, e.what()));
  } catch (...) {
    return Status::Internal(StrFormat(
        "parallel task '%s' failed with a non-exception throw", label));
  }
}

uint64_t SeedSequence::SeedFor(uint64_t task_index) const {
  // Mix seed ⊕ (odd-constant · index) through two splitmix64 rounds: nearby
  // task indices land in unrelated regions of splitmix64's state space, so
  // per-task xoshiro streams seeded from this are mutually independent.
  uint64_t state = base_seed_ ^ (0x9e3779b97f4a7c15ULL * (task_index + 1));
  internal::SplitMix64(&state);
  return internal::SplitMix64(&state);
}

}  // namespace nde
