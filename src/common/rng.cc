#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace nde {

namespace internal {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace internal

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = internal::SplitMix64(&sm);
  has_cached_gaussian_ = false;
  cached_gaussian_ = 0.0;
#ifndef NDEBUG
  owner_ = std::this_thread::get_id();
#endif
}

uint64_t Rng::NextUint64() {
  NDE_DCHECK(owner_ == std::this_thread::get_id())
      << "Rng drawn from a thread other than its owner; Rng is "
         "single-thread-owned — derive per-task streams via SeedSequence";
  // xoshiro256** by Blackman & Vigna (public domain reference implementation).
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  NDE_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  NDE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextUniform(double lo, double hi) {
  NDE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // The cached branch returns without touching NextUint64, so the ownership
  // invariant must be re-checked here.
  NDE_DCHECK(owner_ == std::this_thread::get_id())
      << "Rng drawn from a thread other than its owner; Rng is "
         "single-thread-owned — derive per-task streams via SeedSequence";
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  while (u1 <= 0.0) u1 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = kTwoPi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  NDE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    NDE_CHECK_GE(w, 0.0);
    total += w;
  }
  NDE_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return the last index.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  NDE_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Partial Fisher-Yates.
    std::vector<size_t> pool(n);
    std::iota(pool.begin(), pool.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  // Floyd's algorithm: k iterations, no O(n) setup.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace nde
