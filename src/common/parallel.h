#ifndef NDE_COMMON_PARALLEL_H_
#define NDE_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace nde {

/// --- Thread-count policy ----------------------------------------------------
///
/// Every parallel entry point takes a `num_threads` knob where 0 means "use
/// the process-wide default". The default starts at HardwareConcurrency()
/// and can be overridden once (e.g. by the CLI's global `--threads N` flag).

/// std::thread::hardware_concurrency(), clamped to at least 1.
size_t HardwareConcurrency();

/// The process-wide default worker count used when a caller passes 0.
size_t DefaultNumThreads();

/// Overrides DefaultNumThreads(); passing 0 restores HardwareConcurrency().
void SetDefaultNumThreads(size_t num_threads);

/// Maps a caller-supplied `num_threads` (0 = default) to a concrete count.
size_t ResolveNumThreads(size_t num_threads);

/// The worker count ParallelFor will actually use for `range` items: never
/// more threads than items, never fewer than 1. Exposed so estimators can
/// report `num_threads_used` without duplicating the policy.
size_t PlannedNumThreads(size_t range, size_t num_threads);

/// --- ThreadPool -------------------------------------------------------------

/// Fixed-size FIFO thread pool: no work stealing, no task priorities — tasks
/// run in submission order, each on whichever worker frees up first.
///
/// Lifetime contract: the destructor *drains* the pool — every task submitted
/// before destruction runs to completion before the workers are joined.
///
/// Error contract: a task that throws does not take down the process; the
/// first exception is captured and re-thrown by the next WaitIdle() call
/// (an exception still pending at destruction is dropped).
///
/// Telemetry: submissions and pops update the `parallel.queue_depth` gauge,
/// each executed task bumps `parallel.tasks_executed` and records a
/// "pool_task" trace span on its worker thread, so `--trace` output shows
/// per-worker occupancy.
///
/// Trace-context propagation: Submit captures the submitting thread's
/// TraceContext (common/trace_context.h) and installs it around the task on
/// the worker, so spans/logs/metrics emitted by pool work attach to the
/// submitter's trace and job. ParallelFor inherits this automatically (its
/// workers are pool tasks; the single-thread path runs inline on the caller).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = DefaultNumThreads()).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue (all submitted tasks run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then re-throws
  /// the first exception any task raised since the last WaitIdle().
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (not yet claimed by a worker).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for tasks
  std::condition_variable idle_cv_;  ///< WaitIdle waits here
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_tasks_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// --- ParallelFor ------------------------------------------------------------

/// Runs `body(i)` for every i in [begin, end) across up to `num_threads`
/// workers (0 = DefaultNumThreads()); returns the worker count actually used.
/// Indices are claimed dynamically (an atomic cursor), so the *assignment* of
/// indices to threads is nondeterministic — determinism is the caller's job:
/// write results into storage addressed by `i` and reduce sequentially
/// afterwards, and results are bit-for-bit independent of the thread count.
///
/// Exceptions thrown by `body` stop further index claims and the first one is
/// re-thrown on the calling thread after all workers stop. With one thread
/// (or a single-item range) the body runs inline on the calling thread.
///
/// `label` names the per-worker trace spans in `--trace` output.
size_t ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body,
                   size_t num_threads = 0, const char* label = "parallel_for");

/// ParallelFor with the exception path converted to a typed Status: an
/// injected fault (failpoint::InjectedFault, e.g. the `threadpool.task`
/// failpoint killing a worker task) returns the Status it carries, and any
/// other exception becomes Status::Internal with the exception text. The
/// pool still drains fully before this returns — no task is left running —
/// so estimators can abort a wave without leaking workers. On success,
/// returns the worker count used, like ParallelFor.
Result<size_t> TryParallelFor(size_t begin, size_t end,
                              const std::function<void(size_t)>& body,
                              size_t num_threads = 0,
                              const char* label = "parallel_for");

/// --- SeedSequence -----------------------------------------------------------

/// Derives statistically independent per-task RNG streams from one base seed
/// by splitmix64-mixing `seed ⊕ g(task_index)`. Task index — not thread id —
/// keys the stream, so a task draws the same randomness no matter which
/// worker runs it or how many workers exist: the foundation of the parallel
/// estimators' "same (seed), any thread count → identical results" contract.
class SeedSequence {
 public:
  explicit SeedSequence(uint64_t base_seed) : base_seed_(base_seed) {}

  /// A decorrelated 64-bit seed for task `task_index`.
  uint64_t SeedFor(uint64_t task_index) const;

  /// Convenience: an Rng seeded with SeedFor(task_index). Construct it on the
  /// thread that will draw from it (Rng is single-thread-owned in debug
  /// builds).
  Rng RngFor(uint64_t task_index) const { return Rng(SeedFor(task_index)); }

  uint64_t base_seed() const { return base_seed_; }

 private:
  uint64_t base_seed_;
};

}  // namespace nde

#endif  // NDE_COMMON_PARALLEL_H_
