#ifndef NDE_COMMON_RESULT_H_
#define NDE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace nde {

/// Value-or-error holder, the return type of fallible functions that produce
/// a value. Analogous to `absl::StatusOr<T>` / `arrow::Result<T>`.
///
/// A `Result<T>` is exactly one of:
///   - a value of type `T` (then `ok()` is true and `status()` is OK), or
///   - a non-OK `Status` describing why no value exists.
///
/// Accessing the value of a non-OK result is a programming error and aborts
/// via `NDE_CHECK`.
///
///     Result<Table> t = Table::FromCsv(path);
///     if (!t.ok()) return t.status();
///     Use(t.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose: allows `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit on purpose: allows
  /// `return Status::InvalidArgument(...)`). Constructing from an OK status
  /// is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    NDE_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> must not be constructed from an OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is present, otherwise the stored error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors. Precondition: `ok()`.
  const T& value() const& {
    NDE_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    NDE_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  /// Rvalue overload returns the value BY VALUE (moved out), not as T&&:
  /// a reference into the spent temporary would dangle in the common
  /// `for (auto& x : Fallible().value())` pattern, while a prvalue is
  /// lifetime-extended by the range-for.
  T value() && {
    NDE_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating the error; on success binds
/// the value to `lhs`. Usable in functions returning Status or Result<U>.
#define NDE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  NDE_ASSIGN_OR_RETURN_IMPL_(                                 \
      NDE_MACRO_CONCAT_(nde_result_tmp_, __LINE__), lhs, rexpr)

#define NDE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define NDE_MACRO_CONCAT_INNER_(a, b) a##b
#define NDE_MACRO_CONCAT_(a, b) NDE_MACRO_CONCAT_INNER_(a, b)

}  // namespace nde

#endif  // NDE_COMMON_RESULT_H_
