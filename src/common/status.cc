#include "common/status.h"

namespace nde {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool StatusCodeFromString(const std::string& text, StatusCode* code) {
  static const StatusCode kAll[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,  StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kIOError,     StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kCancelled,
  };
  for (StatusCode candidate : kAll) {
    if (text == StatusCodeToString(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace nde
