#ifndef NDE_COMMON_STRING_UTIL_H_
#define NDE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nde {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Case-sensitive prefix/suffix tests.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view text);

/// Levenshtein edit distance between two strings (O(|a|*|b|) time,
/// O(min(|a|,|b|)) space). Used by the fuzzy-join pipeline operator.
size_t EditDistance(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nde

#endif  // NDE_COMMON_STRING_UTIL_H_
