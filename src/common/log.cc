#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/string_util.h"
#include "common/trace_context.h"

namespace nde {
namespace log {

namespace internal {

std::atomic<int> g_min_level{static_cast<int>(Level::kWarning)};

uint64_t NextOccurrenceEveryN(SiteState* site, uint64_t n) {
  uint64_t occurrence =
      site->occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n <= 1 || (occurrence - 1) % n == 0) return occurrence;
  Logger::Global().CountSuppressed(1);
  return 0;
}

uint64_t NextOccurrenceFirstN(SiteState* site, uint64_t n) {
  uint64_t occurrence =
      site->occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  if (occurrence <= n) return occurrence;
  Logger::Global().CountSuppressed(1);
  return 0;
}

uint64_t NextOccurrenceEveryMs(SiteState* site, int64_t ms) {
  uint64_t occurrence =
      site->occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  int64_t last = site->last_emit_ms.load(std::memory_order_relaxed);
  // Racy-but-safe: two threads passing the window together may both log once;
  // the limiter bounds the *rate*, it is not an exactness contract.
  if (now_ms - last >= ms &&
      site->last_emit_ms.compare_exchange_strong(last, now_ms,
                                                 std::memory_order_relaxed)) {
    return occurrence;
  }
  Logger::Global().CountSuppressed(1);
  return 0;
}

namespace {

/// Same dense-id scheme as telemetry::CurrentThreadId, implemented locally:
/// nde_common cannot depend on nde_telemetry (link cycle), and the ids only
/// need to be stable within a process, not shared across the two subsystems.
uint32_t CurrentLogThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

/// Copies the emitting thread's trace/job identity onto the record, so every
/// sink — text, JSON, test sinks — sees the same attribution. Records emitted
/// outside any context keep empty fields and format exactly as before.
void StampTraceContext(LogRecord* record) {
  const TraceContext& context = CurrentTraceContext();
  if (context.has_trace()) record->trace_id = TraceIdHex(context);
  record->job_id = context.job_id;
}

/// Escapes for a JSON string literal; local twin of telemetry::JsonEscape
/// (same no-upward-dependency constraint as the thread id above).
std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace
}  // namespace internal

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarning: return "WARNING";
    case Level::kError: return "ERROR";
  }
  return "UNKNOWN";
}

bool ParseLevel(const std::string& text, Level* level) {
  std::string lower = ToLowerAscii(text);
  if (lower == "debug") {
    *level = Level::kDebug;
  } else if (lower == "info") {
    *level = Level::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = Level::kWarning;
  } else if (lower == "error" || lower == "err") {
    *level = Level::kError;
  } else {
    return false;
  }
  return true;
}

void SetMinLevel(Level level) {
  internal::g_min_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

std::string FormatText(const LogRecord& record) {
  // glog-style prefix: "I0805 13:02:11.042187  3 file.cc:42] message".
  std::time_t seconds = static_cast<std::time_t>(record.wall_micros / 1000000);
  int64_t micros = record.wall_micros % 1000000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  std::string line = StrFormat(
      "%c%02d%02d %02d:%02d:%02d.%06lld %2u %s:%d] ",
      LevelName(record.level)[0], tm_utc.tm_mon + 1, tm_utc.tm_mday,
      tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
      static_cast<long long>(micros), record.tid, record.file, record.line);
  if (record.occurrence > 1) {
    line += StrFormat("[occurrence %llu] ",
                      static_cast<unsigned long long>(record.occurrence));
  }
  line += record.message;
  if (!record.trace_id.empty()) line += " trace=" + record.trace_id;
  if (!record.job_id.empty()) line += " job=" + record.job_id;
  return line;
}

std::string FormatJson(const LogRecord& record) {
  std::string json = StrFormat(
      "{\"ts_us\":%lld,\"level\":\"%s\",\"file\":\"%s\",\"line\":%d,"
      "\"tid\":%u",
      static_cast<long long>(record.wall_micros), LevelName(record.level),
      internal::EscapeJson(record.file).c_str(), record.line, record.tid);
  if (record.occurrence > 1) {
    json += StrFormat(",\"occurrence\":%llu",
                      static_cast<unsigned long long>(record.occurrence));
  }
  if (!record.trace_id.empty()) {
    json += ",\"trace_id\":\"" + internal::EscapeJson(record.trace_id) + "\"";
  }
  if (!record.job_id.empty()) {
    json += ",\"job_id\":\"" + internal::EscapeJson(record.job_id) + "\"";
  }
  json += ",\"msg\":\"" + internal::EscapeJson(record.message) + "\"}";
  return json;
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Write(const LogRecord& record) {
  emitted_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(record);
    return;
  }
  std::string line = json() ? FormatJson(record) : FormatText(record);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void Logger::SetJson(bool json) {
  json_.store(json, std::memory_order_relaxed);
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

LogStats Logger::stats() const {
  LogStats stats;
  stats.emitted = emitted_.load(std::memory_order_relaxed);
  stats.suppressed = suppressed_.load(std::memory_order_relaxed);
  return stats;
}

void Logger::ResetStats() {
  emitted_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
}

void Logger::CountSuppressed(uint64_t n) {
  suppressed_.fetch_add(n, std::memory_order_relaxed);
}

void Emit(Level level, const char* file, int line,
          const std::string& message) {
  if (!IsEnabled(level)) return;
  LogRecord record;
  record.level = level;
  record.file = internal::Basename(file);
  record.line = line;
  record.wall_micros = internal::WallMicros();
  record.tid = internal::CurrentLogThreadId();
  internal::StampTraceContext(&record);
  record.message = message;
  Logger::Global().Write(record);
}

LogMessage::LogMessage(Level level, const char* file, int line,
                       uint64_t occurrence) {
  record_.level = level;
  record_.file = internal::Basename(file);
  record_.line = line;
  record_.occurrence = occurrence;
}

LogMessage::~LogMessage() {
  record_.wall_micros = internal::WallMicros();
  record_.tid = internal::CurrentLogThreadId();
  internal::StampTraceContext(&record_);
  record_.message = stream_.str();
  Logger::Global().Write(record_);
}

}  // namespace log
}  // namespace nde
