#include "common/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "common/string_util.h"

namespace nde {
namespace failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

enum class Action { kError, kDelay, kNanPoison, kAllocFail };

/// Parsed spec for one armed failpoint. Immutable after arming; Fire takes a
/// copy under the registry lock and evaluates it lock-free afterwards.
struct Config {
  Action action = Action::kError;
  Status status;            ///< pre-built for kError / kAllocFail
  uint64_t delay_ms = 0;    ///< kDelay
  double probability = 1.0; ///< @prob
  uint64_t seed = 0;        ///< @prob/seed
  uint64_t first_hit = 1;   ///< #N (1-based)
  uint64_t max_fires = 0;   ///< xM; 0 = unlimited
};

/// One registered site: its (possibly disarmed) config plus counters that
/// survive re-arming and disarming, so chaos runs can always read how often
/// a site was reached.
struct Point {
  Config config;
  bool armed = false;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

struct Registry {
  std::mutex mu;
  /// Points are never erased, so Fire can hold a Point* across the lock.
  std::map<std::string, std::unique_ptr<Point>> points;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NameHash(const char* name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

/// The probabilistic fire decision: a pure function of (seed, name, key).
bool KeyedDecision(uint64_t seed, uint64_t name_hash, uint64_t key,
                   double probability) {
  uint64_t mixed = SplitMix64(seed ^ SplitMix64(key) ^ name_hash);
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < probability;
}

Status ParseStatusSpec(const std::string& args, const char* name,
                       Status* out) {
  // "code" or "code:message"; empty args mean internal with a stock message.
  std::string code_text = args;
  std::string message;
  size_t colon = args.find(':');
  if (colon != std::string::npos) {
    code_text = args.substr(0, colon);
    message = args.substr(colon + 1);
  }
  StatusCode code = StatusCode::kInternal;
  if (!code_text.empty() && !StatusCodeFromString(code_text, &code)) {
    return Status::InvalidArgument(
        StrFormat("failpoint spec: unknown status code '%s'",
                  code_text.c_str()));
  }
  if (code == StatusCode::kOk) {
    return Status::InvalidArgument("failpoint spec: error code cannot be ok");
  }
  if (message.empty()) {
    message = StrFormat("failpoint '%s' fired", name);
  }
  *out = Status(code, message);
  return Status::OK();
}

Result<uint64_t> ParseUint(const std::string& text, const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("failpoint spec: %s requires an unsigned integer, got '%s'",
                  what, text.c_str()));
  }
  return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

/// Parses "name=action[(args)][@prob[/seed]][#N][xM]" into (name, config).
/// `disarm` is set for the "off" pseudo-action.
Status ParseSpec(const std::string& spec, std::string* name, Config* config,
                 bool* disarm) {
  *disarm = false;
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument(
        StrFormat("failpoint spec '%s' is not name=action", spec.c_str()));
  }
  *name = std::string(StripWhitespace(spec.substr(0, eq)));
  std::string rest(StripWhitespace(spec.substr(eq + 1)));
  if (name->empty() || rest.empty()) {
    return Status::InvalidArgument(
        StrFormat("failpoint spec '%s' is not name=action", spec.c_str()));
  }

  // Action token: letters/underscore up to '(' or a modifier introducer.
  size_t action_end = 0;
  while (action_end < rest.size() &&
         (std::isalpha(static_cast<unsigned char>(rest[action_end])) ||
          rest[action_end] == '_')) {
    ++action_end;
  }
  std::string action = rest.substr(0, action_end);
  std::string args;
  size_t cursor = action_end;
  if (cursor < rest.size() && rest[cursor] == '(') {
    size_t close = rest.find(')', cursor);
    if (close == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("failpoint spec '%s' has an unterminated '('",
                    spec.c_str()));
    }
    args = rest.substr(cursor + 1, close - cursor - 1);
    cursor = close + 1;
  }

  if (action == "off") {
    if (cursor != rest.size() || !args.empty()) {
      return Status::InvalidArgument(
          StrFormat("failpoint spec '%s': 'off' takes no arguments",
                    spec.c_str()));
    }
    *disarm = true;
    return Status::OK();
  }
  if (action == "error") {
    config->action = Action::kError;
    NDE_RETURN_IF_ERROR(ParseStatusSpec(args, name->c_str(), &config->status));
  } else if (action == "delay") {
    config->action = Action::kDelay;
    NDE_ASSIGN_OR_RETURN(config->delay_ms, ParseUint(args, "delay(ms)"));
  } else if (action == "nan") {
    config->action = Action::kNanPoison;
  } else if (action == "alloc_fail") {
    config->action = Action::kAllocFail;
    config->status = Status::ResourceExhausted(
        StrFormat("failpoint '%s': injected allocation failure",
                  name->c_str()));
  } else {
    return Status::InvalidArgument(StrFormat(
        "failpoint spec '%s': unknown action '%s' "
        "(want error|delay|nan|alloc_fail|off)",
        spec.c_str(), action.c_str()));
  }

  // Modifiers, in any order: @prob[/seed], #N, xM.
  while (cursor < rest.size()) {
    char mod = rest[cursor++];
    size_t end = cursor;
    while (end < rest.size() && rest[end] != '@' && rest[end] != '#' &&
           rest[end] != 'x') {
      ++end;
    }
    std::string value = rest.substr(cursor, end - cursor);
    cursor = end;
    if (mod == '@') {
      std::string prob_text = value;
      size_t slash = value.find('/');
      if (slash != std::string::npos) {
        prob_text = value.substr(0, slash);
        NDE_ASSIGN_OR_RETURN(config->seed,
                             ParseUint(value.substr(slash + 1), "@prob/seed"));
      }
      char* parse_end = nullptr;
      double p = std::strtod(prob_text.c_str(), &parse_end);
      if (prob_text.empty() || parse_end != prob_text.c_str() + prob_text.size() ||
          p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(StrFormat(
            "failpoint spec '%s': @prob must be in [0, 1], got '%s'",
            spec.c_str(), prob_text.c_str()));
      }
      config->probability = p;
    } else if (mod == '#') {
      NDE_ASSIGN_OR_RETURN(config->first_hit, ParseUint(value, "#N"));
      if (config->first_hit == 0) {
        return Status::InvalidArgument(
            StrFormat("failpoint spec '%s': #N is 1-based", spec.c_str()));
      }
    } else if (mod == 'x') {
      NDE_ASSIGN_OR_RETURN(config->max_fires, ParseUint(value, "xM"));
      if (config->max_fires == 0) {
        return Status::InvalidArgument(StrFormat(
            "failpoint spec '%s': xM must be positive (use 'off' to disarm)",
            spec.c_str()));
      }
    } else {
      return Status::InvalidArgument(StrFormat(
          "failpoint spec '%s': unknown modifier '%c'", spec.c_str(), mod));
    }
  }
  return Status::OK();
}

Outcome FireImpl(const char* name, bool keyed, uint64_t key) {
  Registry& registry = GlobalRegistry();
  Point* point = nullptr;
  Config config;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end() || !it->second->armed) return Outcome{};
    point = it->second.get();
    config = point->config;
  }
  // Counter updates and the (possibly sleeping) action run outside the lock;
  // the Point lives forever, so the pointer stays valid.
  uint64_t ordinal = point->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ordinal < config.first_hit) return Outcome{};
  if (config.probability < 1.0 &&
      !KeyedDecision(config.seed, NameHash(name), keyed ? key : ordinal,
                     config.probability)) {
    return Outcome{};
  }
  if (config.max_fires > 0) {
    // Count only real fires against xM: CAS so concurrent hits cannot burn
    // the budget without firing.
    uint64_t fired = point->fires.load(std::memory_order_relaxed);
    do {
      if (fired >= config.max_fires) return Outcome{};
    } while (!point->fires.compare_exchange_weak(fired, fired + 1,
                                                 std::memory_order_relaxed));
  } else {
    point->fires.fetch_add(1, std::memory_order_relaxed);
  }

  Outcome outcome;
  switch (config.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(config.delay_ms));
      outcome.kind = Outcome::kNone;  // delay served; caller proceeds
      break;
    case Action::kNanPoison:
      outcome.kind = Outcome::kNanPoison;
      // Value paths check the kind and poison their double instead; sites
      // that can only return a Status degrade to this typed error.
      outcome.status = Status::Internal(
          StrFormat("failpoint '%s': nan poison at a non-value site", name));
      break;
    case Action::kAllocFail:
      outcome.kind = Outcome::kAllocFail;
      outcome.status = config.status;
      break;
    case Action::kError:
      outcome.kind = Outcome::kError;
      outcome.status = config.status;
      break;
  }
  return outcome;
}

/// Arms NDE_FAILPOINTS once at process start, before main() runs.
struct EnvArmer {
  EnvArmer() { ArmFromEnv(); }
};
EnvArmer g_env_armer;

}  // namespace

Outcome Fire(const char* name) { return FireImpl(name, false, 0); }

Outcome Fire(const char* name, uint64_t key) {
  return FireImpl(name, true, key);
}

uint64_t MixKey(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (0x9e3779b97f4a7c15ULL * (b + 1)));
}

Status Arm(const std::string& spec) {
  std::string name;
  Config config;
  bool disarm = false;
  NDE_RETURN_IF_ERROR(ParseSpec(spec, &name, &config, &disarm));
  if (disarm) {
    Disarm(name);
    return Status::OK();
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::unique_ptr<Point>& slot = registry.points[name];
  if (slot == nullptr) slot = std::make_unique<Point>();
  if (!slot->armed) {
    slot->armed = true;
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  slot->config = config;
  return Status::OK();
}

Status ArmFromList(const std::string& specs) {
  size_t begin = 0;
  while (begin <= specs.size()) {
    size_t end = specs.find_first_of(";,", begin);
    if (end == std::string::npos) end = specs.size();
    std::string spec(StripWhitespace(specs.substr(begin, end - begin)));
    if (!spec.empty()) NDE_RETURN_IF_ERROR(Arm(spec));
    begin = end + 1;
  }
  return Status::OK();
}

void ArmFromEnv() {
  const char* env = std::getenv("NDE_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  // Arm spec by spec so one typo does not drop the rest of the list.
  std::string specs = env;
  size_t begin = 0;
  while (begin <= specs.size()) {
    size_t end = specs.find_first_of(";,", begin);
    if (end == std::string::npos) end = specs.size();
    std::string spec(StripWhitespace(specs.substr(begin, end - begin)));
    if (!spec.empty()) {
      Status armed = Arm(spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "warning: NDE_FAILPOINTS: %s (spec ignored)\n",
                     armed.ToString().c_str());
      }
    }
    begin = end + 1;
  }
}

bool Disarm(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end() || !it->second->armed) return false;
  it->second->armed = false;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, point] : registry.points) {
    if (point->armed) {
      point->armed = false;
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void ResetStats() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, point] : registry.points) {
    point->hits.store(0, std::memory_order_relaxed);
    point->fires.store(0, std::memory_order_relaxed);
  }
}

std::vector<PointStats> Stats() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PointStats> stats;
  stats.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    PointStats entry;
    entry.name = name;
    entry.hits = point->hits.load(std::memory_order_relaxed);
    entry.fires = point->fires.load(std::memory_order_relaxed);
    entry.armed = point->armed;
    stats.push_back(std::move(entry));
  }
  return stats;  // std::map iteration is already name-sorted.
}

const std::vector<std::string>& KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "csv.open",            // ReadCsvFile, before opening the file
      "csv.record",          // ReadCsvString, per data record (key: record #)
      "pipeline.execute",    // PlanNode::Execute, per operator
      "encoder.fit",         // ColumnTransformer::Fit, per column encoder
      "encoder.transform",   // ColumnTransformer::Transform, per column
      "utility.evaluate",    // UtilityFunction::TryEvaluate (key: subset hash)
      "subset_cache.insert", // SubsetCache insertion (alloc_fail degrades)
      "threadpool.task",     // ThreadPool worker, per dequeued task
      "http.handle_request", // HttpExporter::HandleRequest, per request
  };
  return *sites;
}

}  // namespace failpoint
}  // namespace nde
