#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace nde {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // Ensure |b| <= |a|.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t substitution = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  NDE_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace nde
