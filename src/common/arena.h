#ifndef NDE_COMMON_ARENA_H_
#define NDE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace nde {

/// Bump allocator for short-lived, uniformly-released scratch memory: the
/// per-permutation coalition-scorer state (KNN top-k windows, NB running
/// statistics) and similar hot-loop buffers that would otherwise cost one
/// malloc each per permutation.
///
/// Allocation is pointer-bump within a chunk; exhausted chunks grow
/// geometrically. There is no per-object free: Reset() reclaims everything at
/// once and retains the largest chunk, so a reused arena reaches a steady
/// state where Allocate never touches the heap again. Objects placed in an
/// arena must be trivially destructible — nothing runs destructors.
///
/// Not thread-safe: an arena belongs to one scorer/scan at a time. Use
/// ArenaPool to recycle arenas across permutations from concurrent workers.
class Arena {
 public:
  /// `min_chunk_bytes` is the size of the first chunk (grown 2x per
  /// exhaustion, capped at kMaxChunkBytes).
  explicit Arena(size_t min_chunk_bytes = 4096);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `alignment`
  /// (a power of two, at most kMaxAlignment). Never fails except by
  /// std::bad_alloc from the underlying chunk allocation.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Typed array of `count` uninitialized elements. T must be trivially
  /// destructible (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Releases every allocation at once. The largest chunk is kept for reuse,
  /// so a warmed-up arena serves subsequent identical workloads without any
  /// heap traffic.
  void Reset();

  /// Bytes handed out since construction or the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total chunk capacity currently held (survives Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr size_t kMaxAlignment = 64;  ///< One cache line.
  static constexpr size_t kMaxChunkBytes = size_t{1} << 22;  ///< 4 MiB cap.

 private:
  struct Chunk {
    char* data = nullptr;
    size_t capacity = 0;
  };

  /// Makes `head_` a chunk with at least `bytes` of room.
  void AddChunk(size_t bytes);

  std::vector<Chunk> chunks_;  ///< chunks_.back() is the active one.
  size_t head_used_ = 0;       ///< Bump offset into the active chunk.
  size_t min_chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// Mutex-guarded free list of arenas. The utility fast path acquires one
/// arena per prefix scan (one per permutation) and releases it when the scan
/// ends; after the first wave every acquisition is a recycled, pre-grown
/// arena, so scorer construction performs zero heap allocations in steady
/// state. Thread-safe; the mutex is taken once per permutation, not per
/// evaluation.
class ArenaPool {
 public:
  explicit ArenaPool(size_t min_chunk_bytes = 4096)
      : min_chunk_bytes_(min_chunk_bytes) {}

  /// A reset arena, recycled when one is free, freshly constructed otherwise.
  std::unique_ptr<Arena> Acquire();

  /// Returns an arena to the pool for reuse. Null is ignored.
  void Release(std::unique_ptr<Arena> arena);

  /// Arenas currently parked in the pool (for tests/telemetry).
  size_t idle() const;

 private:
  size_t min_chunk_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> free_;
};

}  // namespace nde

#endif  // NDE_COMMON_ARENA_H_
