#ifndef NDE_COMMON_FAILPOINT_H_
#define NDE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "common/status.h"

namespace nde {
namespace failpoint {

/// --- Failpoint fault injection ----------------------------------------------
///
/// Named injection sites threaded through the engine's failure-prone layers
/// (CSV reader, plan operators, encoders, utility evaluation, subset cache,
/// thread pool, HTTP exporter). Each site is a no-op until a spec arms it:
///
///   NDE_FAILPOINTS="csv.record=error(io_error:disk gone)#3" nde_cli ...
///
/// or programmatically: `failpoint::Arm("utility.evaluate=nan@0.25/7")`.
///
/// Spec grammar (one per failpoint, ';' or ',' separated in a list):
///
///   name=action[(args)][@prob[/seed]][#N][xM]
///
///   action    off                       disarm (same as Disarm(name))
///             error                     return Status::Internal
///             error(code)               return Status with that code
///             error(code:message)       ... and a custom message
///             delay(ms)                 sleep, then continue normally
///             nan                       poison the value path with a NaN
///             alloc_fail                simulated allocation failure
///                                       (Status::ResourceExhausted; the
///                                       subset cache degrades to a no-op
///                                       insert instead of erroring)
///   @prob[/seed]  fire with probability `prob` in [0, 1]. The decision is a
///             pure function of (seed, site name, key) — see Fire(name, key)
///             — so keyed sites replay bit-identically for any thread count.
///             Unkeyed sites fall back to the site's hit ordinal as the key,
///             which is deterministic only single-threaded. Default seed 0.
///   #N        first fire on the Nth hit of the site (1-based).
///   xM        fire at most M times, then never again.
///
/// Zero-cost-when-off contract: every site is guarded by AnyArmed(), a single
/// relaxed atomic load of the process-wide armed-point count; the registry,
/// counters, and spec evaluation live entirely behind that branch.
///
/// Error codes accepted by `error(...)` are the canonical lowercase names
/// from StatusCodeToString: "internal", "unavailable", "io_error",
/// "resource_exhausted", "invalid_argument", ... Retry-aware callers (the
/// estimators) treat "unavailable" and "resource_exhausted" as transient.

namespace internal {
/// Number of currently armed failpoints. Sites read this through AnyArmed();
/// everything else about the framework hides behind the non-zero branch.
extern std::atomic<int> g_armed_count;
}  // namespace internal

/// True when at least one failpoint is armed. One relaxed atomic load: this
/// is the only cost a site pays when fault injection is off.
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// What an armed failpoint decided for one hit.
struct Outcome {
  enum Kind {
    kNone = 0,    ///< not armed / did not fire / delay already served
    kError,       ///< return `status` to the caller
    kNanPoison,   ///< value paths should produce a quiet NaN
    kAllocFail,   ///< simulated allocation failure; `status` is
                  ///< resource_exhausted for sites that surface it
  };
  Kind kind = kNone;
  /// Non-OK whenever the point fired: the injected error for kError and
  /// kAllocFail, and a typed internal error for kNanPoison so Status-only
  /// sites (which cannot represent a poisoned value) still degrade cleanly.
  Status status;

  bool fired() const { return kind != kNone; }
};

/// Evaluates the failpoint `name` for one hit. Call only behind AnyArmed().
/// Probabilistic specs use the site's hit ordinal as the key (deterministic
/// replay only single-threaded); prefer the keyed overload in parallel code.
Outcome Fire(const char* name);

/// Keyed evaluation: the fire decision for a probabilistic spec is a pure
/// function of (spec seed, site name, key), independent of thread schedule
/// and hit order. Pass a stable, schedule-invariant key (subset hash,
/// permutation×position, record index) and a fixed seed replays the exact
/// same injections for any thread count.
Outcome Fire(const char* name, uint64_t key);

/// Deterministic 64-bit combiner for building stable failpoint keys out of
/// two coordinates (e.g. permutation index and position).
uint64_t MixKey(uint64_t a, uint64_t b);

/// Arms one failpoint from a single spec ("name=action..."). Re-arming an
/// armed name replaces its spec; hit/fire counters persist.
Status Arm(const std::string& spec);

/// Arms every spec in a ';'- or ','-separated list. Stops at the first bad
/// spec and returns its parse error (earlier specs stay armed).
Status ArmFromList(const std::string& specs);

/// Arms from the NDE_FAILPOINTS environment variable, if set. Bad specs are
/// reported on stderr and skipped — an operator typo must not abort the run
/// it was trying to observe. Called once automatically at process start.
void ArmFromEnv();

/// Disarms one failpoint; returns false when it was not armed. Counters are
/// kept (and still reported by Stats()).
bool Disarm(const std::string& name);

/// Disarms everything. Counters are kept.
void DisarmAll();

/// Zeroes every failpoint's hit/fire counters (armed state is unchanged).
void ResetStats();

/// Point-in-time counters for one failpoint that was armed at some time in
/// this process (hits = times an armed site was reached, fires = times it
/// injected). Exported by the telemetry registry as `failpoint.<name>.hits`
/// and `failpoint.<name>.fires`.
struct PointStats {
  std::string name;
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool armed = false;
};

/// Stats for every failpoint ever armed in this process, sorted by name.
std::vector<PointStats> Stats();

/// The catalog of failpoint sites compiled into the engine (DESIGN.md §11).
/// Chaos tests iterate this list to prove every site degrades to a typed
/// error; arming a name outside it is allowed (the spec just never fires).
const std::vector<std::string>& KnownSites();

/// Exception form of an injected fault, for sites that cannot return a
/// Status (the thread pool's worker loop). TryParallelFor unwraps it back
/// into the carried Status on the coordinating thread.
class InjectedFault : public std::exception {
 public:
  explicit InjectedFault(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const char* what() const noexcept override { return what_.c_str(); }
  const Status& status() const { return status_; }

 private:
  Status status_;
  std::string what_;
};

}  // namespace failpoint
}  // namespace nde

/// Evaluates failpoint `name` and returns its injected Status on fire.
/// Usable in functions returning Status or Result<T>. Exactly one relaxed
/// atomic load when nothing is armed.
#define NDE_FAILPOINT(name)                                             \
  do {                                                                  \
    if (::nde::failpoint::AnyArmed()) {                                 \
      ::nde::failpoint::Outcome nde_fp_out_ =                           \
          ::nde::failpoint::Fire(name);                                 \
      if (nde_fp_out_.fired()) return nde_fp_out_.status;               \
    }                                                                   \
  } while (false)

/// Keyed variant for parallel code paths (see Fire(name, key)).
#define NDE_FAILPOINT_KEYED(name, key)                                  \
  do {                                                                  \
    if (::nde::failpoint::AnyArmed()) {                                 \
      ::nde::failpoint::Outcome nde_fp_out_ =                           \
          ::nde::failpoint::Fire(name, (key));                          \
      if (nde_fp_out_.fired()) return nde_fp_out_.status;               \
    }                                                                   \
  } while (false)

#endif  // NDE_COMMON_FAILPOINT_H_
