#include "common/trace_context.h"

#include <atomic>
#include <chrono>

#include "common/rng.h"

namespace nde {

namespace {

/// One thread-local slot per thread. `installs` counts nested
/// ScopedTraceContext scopes so HasTraceContext can distinguish "a request
/// context is active" from "the slot still holds default values".
struct ContextSlot {
  TraceContext context;
  int installs = 0;
};

ContextSlot& Slot() {
  thread_local ContextSlot slot;
  return slot;
}

/// Base seed for id minting: sampled once, mixing wall-clock time with ASLR
/// address entropy so two processes started in the same microsecond still
/// mint disjoint ids. Per-mint cost after that is one fetch_add + splitmix64.
uint64_t MintBaseSeed() {
  static const uint64_t seed = [] {
    uint64_t state = static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    state ^= reinterpret_cast<uintptr_t>(&Slot) << 17;
    internal::SplitMix64(&state);
    return internal::SplitMix64(&state);
  }();
  return seed;
}

uint64_t MintId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t state = MintBaseSeed() ^
                   (0x9e3779b97f4a7c15ULL *
                    (counter.fetch_add(1, std::memory_order_relaxed) + 1));
  internal::SplitMix64(&state);
  uint64_t id = internal::SplitMix64(&state);
  return id != 0 ? id : 1;  // all-zero ids are invalid on the wire
}

void AppendHex64(std::string* out, uint64_t value) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHex[(value >> shift) & 0xF]);
  }
}

/// Parses exactly `digits` lowercase hex chars at text[pos]; false on any
/// non-[0-9a-f] byte (uppercase is a W3C violation and is rejected).
bool ParseHex(const std::string& text, size_t pos, size_t digits,
              uint64_t* out) {
  uint64_t value = 0;
  for (size_t i = 0; i < digits; ++i) {
    char c = text[pos + i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  *out = value;
  return true;
}

}  // namespace

namespace internal {

TraceContext* MutableCurrentTraceContext() { return &Slot().context; }

void AdjustTraceContextInstalls(int delta) { Slot().installs += delta; }

}  // namespace internal

const TraceContext& CurrentTraceContext() { return Slot().context; }

bool HasTraceContext() {
  const ContextSlot& slot = Slot();
  return slot.installs > 0 || slot.context.span_id != 0;
}

ScopedTraceContext::ScopedTraceContext(TraceContext context) {
  ContextSlot& slot = Slot();
  saved_ = std::move(slot.context);
  slot.context = std::move(context);
  ++slot.installs;
}

ScopedTraceContext::~ScopedTraceContext() {
  ContextSlot& slot = Slot();
  slot.context = std::move(saved_);
  --slot.installs;
}

std::string TraceIdHex(const TraceContext& context) {
  std::string out;
  out.reserve(32);
  AppendHex64(&out, context.trace_id_hi);
  AppendHex64(&out, context.trace_id_lo);
  return out;
}

std::string SpanIdHex(uint64_t span_id) {
  std::string out;
  out.reserve(16);
  AppendHex64(&out, span_id);
  return out;
}

std::string FormatTraceparent(const TraceContext& context) {
  std::string out = "00-";
  out.reserve(55);
  AppendHex64(&out, context.trace_id_hi);
  AppendHex64(&out, context.trace_id_lo);
  out.push_back('-');
  AppendHex64(&out, context.span_id);
  out += "-01";
  return out;
}

bool ParseTraceparent(const std::string& text, TraceContext* out) {
  // version(2) '-' trace-id(32) '-' span-id(16) '-' flags(2) == 55 bytes.
  if (text.size() != 55) return false;
  if (text[2] != '-' || text[35] != '-' || text[52] != '-') return false;
  uint64_t version, hi, lo, span, flags;
  if (!ParseHex(text, 0, 2, &version) || !ParseHex(text, 3, 16, &hi) ||
      !ParseHex(text, 19, 16, &lo) || !ParseHex(text, 36, 16, &span) ||
      !ParseHex(text, 53, 2, &flags)) {
    return false;
  }
  if (version == 0xff) return false;  // forbidden by the spec
  if ((hi | lo) == 0 || span == 0) return false;
  out->trace_id_hi = hi;
  out->trace_id_lo = lo;
  out->span_id = span;
  return true;
}

TraceContext MintTraceContext() {
  TraceContext context;
  context.trace_id_hi = MintId();
  context.trace_id_lo = MintId();
  context.span_id = MintId();
  return context;
}

uint64_t MintSpanId() { return MintId(); }

}  // namespace nde
