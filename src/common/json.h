#ifndef NDE_COMMON_JSON_H_
#define NDE_COMMON_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nde {
namespace json {

/// Minimal JSON document model. The library *produces* JSON in several places
/// (metrics, run reports, Describe), but the serving layer is the first
/// consumer: `POST /jobs` bodies arrive as JSON, and tests parse responses.
/// Scope is exactly what that needs — objects, arrays, strings with the
/// standard escapes, numbers, booleans, null — with strict errors instead of
/// lenient recovery.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Scalar accessors; only meaningful when the type matches.
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  /// Decoded string contents (escapes resolved).
  const std::string& as_string() const { return string_; }

  /// The verbatim source token for scalars ("1e-3" stays "1e-3", "true",
  /// "null"); empty for objects, arrays, and strings. Lets option maps keep a
  /// number's exact spelling instead of a double round-trip.
  const std::string& raw() const { return raw_; }

  /// Array elements (empty unless is_array()).
  const std::vector<Value>& items() const { return items_; }

  /// Object members in source order (empty unless is_object()). Duplicate
  /// keys are rejected at parse time.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Construction (used by the parser; handy for tests).
  static Value Null();
  static Value Bool(bool value);
  static Value Number(double value, std::string raw);
  static Value String(std::string value);
  static Value Object(std::vector<std::pair<std::string, Value>> members);
  static Value Array(std::vector<Value> items);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::string raw_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document. Strict: the whole input must be consumed
/// (trailing garbage is an error), nesting depth is capped, and malformed
/// escapes/numbers/duplicated object keys return InvalidArgument with the
/// byte offset of the problem.
Result<Value> Parse(const std::string& text);

}  // namespace json
}  // namespace nde

#endif  // NDE_COMMON_JSON_H_
