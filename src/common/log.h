#ifndef NDE_COMMON_LOG_H_
#define NDE_COMMON_LOG_H_

/// Structured, leveled logging for nde ("NDE_LOG(INFO) << ..."-style).
///
/// Design goals, in order:
///   1. Observability without perturbation — logging never changes estimator
///      results (it only formats and writes), so instrumented code keeps the
///      bit-determinism contract of DESIGN.md §8.
///   2. Operator-friendly output: a human text sink by default, a JSON-lines
///      sink (`Logger::SetJson(true)`) for log shippers, both carrying the
///      same structured record (level, file:line, thread, wall-clock time).
///   3. Cheap when silent: a disabled level costs one relaxed atomic load and
///      no formatting; with NDE_TELEMETRY=OFF the macros compile out entirely
///      (the class API below stays available in both build modes, mirroring
///      telemetry/telemetry.h).
///   4. Rate-limited per-site suppression: NDE_LOG_EVERY_N / NDE_LOG_FIRST_N /
///      NDE_LOG_EVERY_MS keep hot loops from flooding the sink; suppressed
///      messages are counted (Logger::stats()) so silence is visible.
///
/// This lives in common/ (not telemetry/) because nde_telemetry links
/// nde_common: the logger must be usable from everything, including the
/// telemetry subsystem itself.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

#ifndef NDE_TELEMETRY_ENABLED
#define NDE_TELEMETRY_ENABLED 1
#endif

namespace nde {
namespace log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// "DEBUG", "INFO", "WARNING", "ERROR".
const char* LevelName(Level level);

/// Parses "debug|info|warning|error" (case-insensitive; "warn" and "err"
/// accepted). Returns false (and leaves *level untouched) on anything else.
bool ParseLevel(const std::string& text, Level* level);

namespace internal {
/// The runtime level filter, read on every NDE_LOG site. Exposed so
/// IsEnabled can inline to a single relaxed load.
extern std::atomic<int> g_min_level;
}  // namespace internal

/// Messages below this level are dropped before any formatting happens.
/// Defaults to kWarning so library code is quiet unless an operator opts in.
inline Level MinLevel() {
  return static_cast<Level>(
      internal::g_min_level.load(std::memory_order_relaxed));
}
void SetMinLevel(Level level);

inline bool IsEnabled(Level level) {
  return static_cast<int>(level) >=
         internal::g_min_level.load(std::memory_order_relaxed);
}

/// One structured log message, as handed to sinks.
struct LogRecord {
  Level level = Level::kInfo;
  const char* file = "";  ///< basename of the emitting source file
  int line = 0;
  int64_t wall_micros = 0;  ///< microseconds since the Unix epoch
  uint32_t tid = 0;         ///< small dense thread id (first-use order)
  /// For rate-limited sites: how many times the site has fired in total
  /// (1 for plain NDE_LOG). occurrence > 1 on an EVERY_N site means
  /// occurrence - previous emissions were suppressed since the last line.
  uint64_t occurrence = 1;
  /// Auto-stamped from the emitting thread's TraceContext (see
  /// common/trace_context.h): the 32-hex trace id and owning job id, both ""
  /// when no context is installed — existing output stays byte-identical.
  std::string trace_id;
  std::string job_id;
  std::string message;
};

/// Human-readable single line: "I0805 13:02:11.042187  3 file.cc:42] msg",
/// with " trace=<id> job=<id>" appended when the record carries them.
std::string FormatText(const LogRecord& record);
/// JSON-lines object: {"ts_us":...,"level":"INFO","file":"...","line":42,
/// "tid":3,"msg":"..."} (+ "occurrence" when > 1, + "trace_id"/"job_id"
/// when the record was emitted under an installed TraceContext).
std::string FormatJson(const LogRecord& record);

/// Counters over the process lifetime; suppressed counts messages dropped by
/// rate-limited sites (NOT by the level filter, which is free by design).
struct LogStats {
  uint64_t emitted = 0;
  uint64_t suppressed = 0;
};

/// Process-wide sink fan-in. Thread-safe: records from concurrent threads are
/// written atomically (one line each, never interleaved).
class Logger {
 public:
  static Logger& Global();

  /// Formats with FormatText/FormatJson and writes to stderr, or hands the
  /// record to the test sink when one is installed.
  void Write(const LogRecord& record);

  /// Switches the default stderr sink between text and JSON-lines.
  void SetJson(bool json);
  bool json() const { return json_.load(std::memory_order_relaxed); }

  /// Replaces the stderr writer (tests, embedders). Pass nullptr to restore
  /// the default. The sink runs under the logger's mutex.
  using Sink = std::function<void(const LogRecord&)>;
  void SetSink(Sink sink);

  LogStats stats() const;
  void ResetStats();

  /// Internal: rate-limited sites report their drops here.
  void CountSuppressed(uint64_t n);

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  mutable std::mutex mu_;
  Sink sink_;  ///< guarded by mu_
  std::atomic<bool> json_{false};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};
};

/// Emits one message through Logger::Global() (level filter applied). The
/// function form is always available — even when NDE_TELEMETRY=OFF compiles
/// the macros out — for callers like the CLI that log unconditionally.
void Emit(Level level, const char* file, int line, const std::string& message);

/// RAII message builder backing NDE_LOG: accumulates an ostream and hands the
/// finished record to Logger::Global() at destruction (end of the statement).
class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line, uint64_t occurrence = 1);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogRecord record_;
  std::ostringstream stream_;
};

/// Makes the ternary in NDE_LOG type-check: both arms must be void.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Swallows "<<" chains when logging is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

namespace internal {

/// Per-call-site state for the rate-limited macros. Each macro expansion
/// owns one instance via a local-static-in-lambda, so different sites never
/// share counters.
struct SiteState {
  std::atomic<uint64_t> occurrences{0};
  std::atomic<int64_t> last_emit_ms{-(1LL << 62)};  ///< steady-clock ms
};

/// Returns the 1-based occurrence number when this occurrence should emit
/// (1, n+1, 2n+1, ...), 0 when it is suppressed. Counts suppressions.
uint64_t NextOccurrenceEveryN(SiteState* site, uint64_t n);
/// Emits only the first `n` occurrences of the site.
uint64_t NextOccurrenceFirstN(SiteState* site, uint64_t n);
/// Emits at most once per `ms` milliseconds (steady clock) per site.
uint64_t NextOccurrenceEveryMs(SiteState* site, int64_t ms);

}  // namespace internal
}  // namespace log
}  // namespace nde

#define NDE_LOG_LEVEL_DEBUG ::nde::log::Level::kDebug
#define NDE_LOG_LEVEL_INFO ::nde::log::Level::kInfo
#define NDE_LOG_LEVEL_WARNING ::nde::log::Level::kWarning
#define NDE_LOG_LEVEL_ERROR ::nde::log::Level::kError

#if NDE_TELEMETRY_ENABLED

/// NDE_LOG(INFO) << "rows=" << rows;
/// The stream operands are not evaluated when the level is filtered out.
#define NDE_LOG(severity)                                                  \
  !::nde::log::IsEnabled(NDE_LOG_LEVEL_##severity)                         \
      ? (void)0                                                            \
      : ::nde::log::Voidify() &                                            \
            ::nde::log::LogMessage(NDE_LOG_LEVEL_##severity, __FILE__,     \
                                   __LINE__)                               \
                .stream()

/// Shared skeleton of the rate-limited variants: `decider` maps this site's
/// SiteState to an occurrence number (0 = suppressed). The lambda-static
/// gives every expansion its own SiteState while keeping the whole construct
/// a single statement, so it nests anywhere NDE_LOG does.
#define NDE_LOG_RATE_LIMITED_IMPL(severity, decider, arg)                   \
  for (uint64_t nde_log_occurrence =                                        \
           ::nde::log::IsEnabled(NDE_LOG_LEVEL_##severity)                  \
               ? ::nde::log::internal::decider(                             \
                     [] {                                                   \
                       static ::nde::log::internal::SiteState state;        \
                       return &state;                                       \
                     }(),                                                   \
                     (arg))                                                 \
               : 0;                                                         \
       nde_log_occurrence != 0; nde_log_occurrence = 0)                     \
  ::nde::log::Voidify() &                                                   \
      ::nde::log::LogMessage(NDE_LOG_LEVEL_##severity, __FILE__, __LINE__,  \
                             nde_log_occurrence)                            \
          .stream()

/// Emits the 1st, (n+1)th, (2n+1)th, ... occurrence of this site.
#define NDE_LOG_EVERY_N(severity, n) \
  NDE_LOG_RATE_LIMITED_IMPL(severity, NextOccurrenceEveryN, n)

/// Emits only the first n occurrences of this site.
#define NDE_LOG_FIRST_N(severity, n) \
  NDE_LOG_RATE_LIMITED_IMPL(severity, NextOccurrenceFirstN, n)

/// Emits at most one line per `ms` milliseconds from this site.
#define NDE_LOG_EVERY_MS(severity, ms) \
  NDE_LOG_RATE_LIMITED_IMPL(severity, NextOccurrenceEveryMs, ms)

#else  // !NDE_TELEMETRY_ENABLED

// Compiled out: the "<<" chain still type-checks but generates no code and
// evaluates nothing at runtime (the while(false) body is dead).
#define NDE_LOG(severity) \
  while (false) ::nde::log::NullStream()
#define NDE_LOG_EVERY_N(severity, n) \
  while (false) ::nde::log::NullStream()
#define NDE_LOG_FIRST_N(severity, n) \
  while (false) ::nde::log::NullStream()
#define NDE_LOG_EVERY_MS(severity, ms) \
  while (false) ::nde::log::NullStream()

#endif  // NDE_TELEMETRY_ENABLED

#endif  // NDE_COMMON_LOG_H_
