#ifndef NDE_COMMON_PROGRESS_H_
#define NDE_COMMON_PROGRESS_H_

#include <cstddef>
#include <functional>

namespace nde {

/// One progress observation from a long-running estimator, emitted on the
/// *coordinating* thread at fixed wave boundaries (never from workers), so a
/// fixed seed produces the exact same update sequence for any thread count.
///
/// Determinism contract: progress callbacks are observational. Estimators
/// compute every field from state they already maintain and never let the
/// callback influence sampling, convergence, or reduction order — results
/// with and without a callback installed are bit-identical (enforced by
/// tests/determinism_test.cc).
struct ProgressUpdate {
  /// Which estimator phase is reporting: "tmc_shapley", "banzhaf",
  /// "beta_shapley", "leave_one_out", "knn_shapley".
  const char* phase = "";
  /// Work units finished so far: permutations, samples, units, or validation
  /// points, depending on the phase.
  size_t completed = 0;
  /// The full budget in the same unit as `completed`. Early stopping may
  /// finish a run with completed < total.
  size_t total = 0;
  /// Utility evaluations consumed so far (0 for closed-form estimators).
  size_t utility_evaluations = 0;
  /// Largest per-unit standard error at this boundary; 0 when not estimable
  /// (fewer than 2 observations, or a closed-form estimator).
  double max_std_error = 0.0;
};

/// Invoked after each wave; must be fast and must not touch estimator state.
/// Exceptions propagate to the estimator's caller.
using ProgressCallback = std::function<void(const ProgressUpdate&)>;

}  // namespace nde

#endif  // NDE_COMMON_PROGRESS_H_
