#ifndef NDE_COMMON_TRACE_CONTEXT_H_
#define NDE_COMMON_TRACE_CONTEXT_H_

/// Request-scoped trace context, propagated Dapper-style: a 128-bit trace id
/// plus the current span id, carried in a thread-local slot and copied across
/// thread hops explicitly (ThreadPool::Submit captures the submitter's
/// context and installs it around the task). `job_id` / `algorithm` ride
/// along so telemetry — spans, structured logs, labeled metrics — can
/// attribute work executed by shared pool workers to the job that submitted
/// it.
///
/// The wire format is W3C Trace Context's `traceparent` header:
///
///   00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
///   ^^ ^trace-id (32 lowercase hex)^^^^ ^span-id (16)^^^^ ^flags
///
/// Determinism contract: ids are minted from a process-local counter mixed
/// through splitmix64 and never feed back into estimator sampling, so
/// attaching a context (or none) cannot change any computed value — the same
/// "observational only" rule the rest of telemetry follows (DESIGN.md §8).
///
/// This lives in common/ (not telemetry/) for the same reason the logger
/// does: nde_telemetry links nde_common, and the logger must be able to stamp
/// records with the current trace without a link cycle.

#include <cstdint>
#include <string>

namespace nde {

struct TraceContext {
  uint64_t trace_id_hi = 0;  ///< high 64 bits of the 128-bit trace id
  uint64_t trace_id_lo = 0;  ///< low 64 bits
  uint64_t span_id = 0;      ///< the current (parent-to-be) span
  std::string job_id;        ///< owning job ("" outside the job API)
  std::string algorithm;     ///< the job's algorithm ("" when unknown)

  /// A context with an all-zero trace id carries attribution fields only;
  /// W3C forbids all-zero ids on the wire.
  bool has_trace() const { return (trace_id_hi | trace_id_lo) != 0; }
};

/// The context installed on the calling thread (a default-constructed one
/// when nothing is installed). The reference stays valid for the thread's
/// lifetime but its fields change as scopes install/uninstall.
const TraceContext& CurrentTraceContext();

/// True when the calling thread is inside a ScopedTraceContext or an open
/// span — i.e. there is something worth propagating across a thread hop.
bool HasTraceContext();

namespace internal {
/// Mutable access to the thread-local slot, for the RAII helpers here and
/// the span-id push/pop in telemetry's ScopedSpan. Not a public API.
TraceContext* MutableCurrentTraceContext();
/// Install-depth bookkeeping backing HasTraceContext().
void AdjustTraceContextInstalls(int delta);
}  // namespace internal

/// Installs `context` as the calling thread's current context for the scope's
/// lifetime, restoring the previous context (if any) on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// 32 lowercase hex chars of the trace id ("0..0" for a traceless context).
std::string TraceIdHex(const TraceContext& context);
/// 16 lowercase hex chars of a span id.
std::string SpanIdHex(uint64_t span_id);

/// Renders `context` as a version-00 traceparent with the sampled flag set:
/// "00-<32 hex>-<16 hex>-01". Precondition: context.has_trace().
std::string FormatTraceparent(const TraceContext& context);

/// Strict W3C traceparent parser: exactly 55 bytes, lowercase hex, dashes at
/// positions 2/35/52, version != "ff", trace and span ids not all-zero.
/// Returns false (leaving *out untouched) on anything else — including the
/// empty string, so callers can feed a possibly-absent header directly.
bool ParseTraceparent(const std::string& text, TraceContext* out);

/// Mints a fresh context: random-looking nonzero trace and span ids from a
/// process-local counter mixed through splitmix64 (no wall-clock reads on the
/// per-mint path; the counter's base seed takes entropy once at first use).
TraceContext MintTraceContext();

/// A fresh nonzero span id from the same generator.
uint64_t MintSpanId();

}  // namespace nde

#endif  // NDE_COMMON_TRACE_CONTEXT_H_
