#ifndef NDE_COMMON_CHECK_H_
#define NDE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace nde {
namespace internal {

/// Stream sink that aborts the process when destroyed. Used by `NDE_CHECK` to
/// collect a human-readable failure message before terminating.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "NDE_CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nde

/// Aborts the process with a message when `condition` is false. For invariant
/// violations and programming errors only; expected failures use Status.
///
///     NDE_CHECK(i < n) << "index " << i << " out of bounds";
#define NDE_CHECK(condition)                                        \
  if (condition) {                                                  \
  } else /* NOLINT */                                               \
    ::nde::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

/// Debug-build-only check: in NDEBUG (release) builds the condition is not
/// evaluated and the whole statement compiles away. For invariants that are
/// too hot — or too intrusive — to verify in optimized builds, e.g. the Rng
/// thread-ownership check.
#ifndef NDEBUG
#define NDE_DCHECK(condition) NDE_CHECK(condition)
#else
#define NDE_DCHECK(condition) \
  while (false) NDE_CHECK(true)
#endif

/// Equality/comparison conveniences.
#define NDE_CHECK_EQ(a, b) NDE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NDE_CHECK_NE(a, b) NDE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define NDE_CHECK_LT(a, b) NDE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define NDE_CHECK_LE(a, b) NDE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NDE_CHECK_GT(a, b) NDE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define NDE_CHECK_GE(a, b) NDE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // NDE_COMMON_CHECK_H_
