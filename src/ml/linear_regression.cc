#include "ml/linear_regression.h"

#include "common/string_util.h"
#include "linalg/solve.h"

namespace nde {

namespace {

/// Appends a constant-1 column when fitting an intercept.
Matrix DesignMatrix(const Matrix& features, bool fit_intercept) {
  if (!fit_intercept) return features;
  Matrix ones(features.rows(), 1, 1.0);
  return features.ConcatCols(ones);
}

}  // namespace

RidgeRegression::RidgeRegression(double lambda, bool fit_intercept)
    : lambda_(lambda), fit_intercept_(fit_intercept) {
  NDE_CHECK_GE(lambda, 0.0);
}

Status RidgeRegression::Fit(const RegressionDataset& data) {
  if (data.features.rows() != data.targets.size()) {
    return Status::InvalidArgument(
        StrFormat("feature rows %zu != target count %zu", data.features.rows(),
                  data.targets.size()));
  }
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  Matrix phi = DesignMatrix(data.features, fit_intercept_);
  size_t p = phi.cols();
  // Gram = Phi^T Phi + lambda I (intercept column also regularized only when
  // lambda is tiny; we exclude it for statistical correctness).
  Matrix gram(p, p);
  for (size_t r = 0; r < phi.rows(); ++r) {
    const double* row = phi.RowPtr(r);
    for (size_t i = 0; i < p; ++i) {
      double xi = row[i];
      if (xi == 0.0) continue;
      for (size_t j = 0; j < p; ++j) gram(i, j) += xi * row[j];
    }
  }
  size_t reg_limit = fit_intercept_ ? p - 1 : p;
  for (size_t i = 0; i < reg_limit; ++i) gram(i, i) += lambda_;
  if (fit_intercept_) gram(p - 1, p - 1) += 1e-12;  // Numerical safeguard.

  NDE_ASSIGN_OR_RETURN(Matrix gram_inv, SpdInverse(gram));
  // hat_basis = gram_inv * Phi^T, shape p x n.
  hat_basis_ = gram_inv.MatMul(phi.Transposed());
  std::vector<double> coeffs = hat_basis_.MatVec(data.targets);

  if (fit_intercept_) {
    weights_.assign(coeffs.begin(), coeffs.end() - 1);
    intercept_ = coeffs.back();
  } else {
    weights_ = coeffs;
    intercept_ = 0.0;
  }
  fitted_ = true;
  return Status::OK();
}

double RidgeRegression::PredictOne(const std::vector<double>& x) const {
  NDE_CHECK(fitted_);
  NDE_CHECK_EQ(x.size(), weights_.size());
  return Dot(x, weights_) + intercept_;
}

std::vector<double> RidgeRegression::Predict(const Matrix& features) const {
  NDE_CHECK(fitted_);
  std::vector<double> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    double acc = intercept_;
    for (size_t c = 0; c < weights_.size(); ++c) acc += weights_[c] * row[c];
    out[r] = acc;
  }
  return out;
}

double RidgeRegression::MeanSquaredError(const RegressionDataset& data) const {
  std::vector<double> predictions = Predict(data.features);
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double diff = predictions[i] - data.targets[i];
    total += diff * diff;
  }
  return data.size() == 0 ? 0.0 : total / static_cast<double>(data.size());
}

std::vector<double> RidgeRegression::HatRow(const std::vector<double>& x) const {
  NDE_CHECK(fitted_);
  std::vector<double> phi_x = x;
  if (fit_intercept_) phi_x.push_back(1.0);
  NDE_CHECK_EQ(phi_x.size(), hat_basis_.rows());
  // a = phi(x)^T * hat_basis_ -> one weight per training example.
  return hat_basis_.TransposedMatVec(phi_x);
}

}  // namespace nde
