#ifndef NDE_ML_METRICS_H_
#define NDE_ML_METRICS_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "ml/model.h"

namespace nde {

/// --- Correctness metrics (Figure 1: "Correctness Metric") -----------------

/// Fraction of positions where predicted == actual. Empty input yields 0.
double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted);

/// Confusion counts for a binary task with positive class `positive_label`.
struct BinaryConfusion {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double FalsePositiveRate() const;
  double TruePositiveRate() const { return Recall(); }
};

BinaryConfusion ComputeBinaryConfusion(const std::vector<int>& actual,
                                       const std::vector<int>& predicted,
                                       int positive_label = 1);

/// Binary F1 with positive class 1.
double F1Score(const std::vector<int>& actual,
               const std::vector<int>& predicted);

/// Macro-averaged F1 over all classes present in `actual`.
double MacroF1Score(const std::vector<int>& actual,
                    const std::vector<int>& predicted, int num_classes);

/// Mean cross-entropy of probability rows against the actual labels.
double LogLoss(const Matrix& probabilities, const std::vector<int>& actual);

/// --- Fairness metrics (Figure 1: "Fairness Metric") ------------------------
/// All take a per-example protected-group id; metrics are the maximum
/// pairwise absolute gap across groups, so 0 means perfectly fair and larger
/// values mean more disparity.

/// Demographic parity difference: max gap in P(pred = 1) across groups.
double DemographicParityDifference(const std::vector<int>& predicted,
                                   const std::vector<int>& groups);

/// Equalized odds difference: max over {TPR gap, FPR gap} across groups.
double EqualizedOddsDifference(const std::vector<int>& actual,
                               const std::vector<int>& predicted,
                               const std::vector<int>& groups);

/// Predictive parity difference: max gap in precision across groups.
double PredictiveParityDifference(const std::vector<int>& actual,
                                  const std::vector<int>& predicted,
                                  const std::vector<int>& groups);

/// --- Stability metrics (Figure 1: "Stability Metric") ----------------------

/// Mean Shannon entropy (natural log) of the per-row probability
/// distributions; lower means more confident/stable predictions.
double MeanPredictionEntropy(const Matrix& probabilities);

/// --- Evaluation harness -----------------------------------------------------

/// The quality metric panel of Figure 1 computed in one pass.
struct QualityReport {
  double accuracy = 0.0;
  double f1 = 0.0;
  double log_loss = 0.0;
  double equalized_odds = 0.0;       ///< 0 when no groups supplied
  double predictive_parity = 0.0;    ///< 0 when no groups supplied
  double prediction_entropy = 0.0;
};

/// Trains a fresh model from `factory` on `train` and evaluates on `test`.
/// `test_groups` (optional, empty = skip fairness metrics) must align with
/// test rows.
Result<QualityReport> TrainAndEvaluate(const ClassifierFactory& factory,
                                       const MlDataset& train,
                                       const MlDataset& test,
                                       const std::vector<int>& test_groups = {});

/// Convenience: test accuracy of `factory` trained on `train`.
Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const MlDataset& train, const MlDataset& test);

}  // namespace nde

#endif  // NDE_ML_METRICS_H_
