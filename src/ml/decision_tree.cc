#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nde {

namespace {

/// Gini impurity of a label histogram with `total` examples.
double Gini(const std::vector<size_t>& histogram, size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  double inv = 1.0 / static_cast<double>(total);
  for (size_t count : histogram) {
    double p = static_cast<double>(count) * inv;
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(DecisionTreeOptions options)
    : options_(options) {}

Status DecisionTreeClassifier::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status DecisionTreeClassifier::FitWithClasses(const MlDataset& data,
                                              int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit tree on empty data");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  num_classes_ = std::max(num_classes, 1);
  nodes_.clear();
  std::vector<size_t> all(data.size());
  std::iota(all.begin(), all.end(), size_t{0});
  BuildNode(data, all, 0);
  fitted_ = true;
  return Status::OK();
}

int DecisionTreeClassifier::BuildNode(const MlDataset& data,
                                      const std::vector<size_t>& indices,
                                      size_t depth) {
  Node node;
  std::vector<size_t> histogram(static_cast<size_t>(num_classes_), 0);
  for (size_t i : indices) ++histogram[static_cast<size_t>(data.labels[i])];
  node.class_fractions.assign(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    node.class_fractions[static_cast<size_t>(c)] =
        static_cast<double>(histogram[static_cast<size_t>(c)]) /
        static_cast<double>(indices.size());
  }

  double parent_gini = Gini(histogram, indices.size());
  bool can_split = depth < options_.max_depth &&
                   indices.size() >= options_.min_samples_split &&
                   parent_gini > 0.0;

  int best_feature = -1;
  double best_threshold = 0.0;
  // Accept any valid split of an impure node, even at zero gain (as CART
  // implementations do): parity-style targets like XOR have zero first-split
  // gain but become separable one level down. Among (near-)equal gains the
  // most balanced split wins — this makes zero-gain levels of parity targets
  // cut through the middle instead of shaving single points off.
  double best_gain = -1.0;
  size_t best_imbalance = 0;

  if (can_split) {
    size_t d = data.features.cols();
    std::vector<size_t> sorted = indices;
    for (size_t f = 0; f < d; ++f) {
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        double va = data.features(a, f);
        double vb = data.features(b, f);
        if (va != vb) return va < vb;
        return a < b;
      });
      std::vector<size_t> left_hist(static_cast<size_t>(num_classes_), 0);
      std::vector<size_t> right_hist = histogram;
      for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        size_t idx = sorted[pos];
        size_t label = static_cast<size_t>(data.labels[idx]);
        ++left_hist[label];
        --right_hist[label];
        double v = data.features(idx, f);
        double v_next = data.features(sorted[pos + 1], f);
        if (v == v_next) continue;  // Can only split between distinct values.
        size_t left_count = pos + 1;
        size_t right_count = sorted.size() - left_count;
        if (left_count < options_.min_samples_leaf ||
            right_count < options_.min_samples_leaf) {
          continue;
        }
        double weighted =
            (static_cast<double>(left_count) * Gini(left_hist, left_count) +
             static_cast<double>(right_count) * Gini(right_hist, right_count)) /
            static_cast<double>(sorted.size());
        double gain = parent_gini - weighted;
        size_t imbalance = left_count > right_count ? left_count - right_count
                                                    : right_count - left_count;
        bool better = gain > best_gain + 1e-12 ||
                      (gain > best_gain - 1e-12 && best_feature >= 0 &&
                       imbalance < best_imbalance);
        if (better) {
          best_gain = std::max(gain, best_gain);
          best_imbalance = imbalance;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (v + v_next);
        }
      }
    }
  }

  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (best_feature >= 0) {
    std::vector<size_t> left_indices;
    std::vector<size_t> right_indices;
    for (size_t i : indices) {
      if (data.features(i, static_cast<size_t>(best_feature)) <=
          best_threshold) {
        left_indices.push_back(i);
      } else {
        right_indices.push_back(i);
      }
    }
    int left = BuildNode(data, left_indices, depth + 1);
    int right = BuildNode(data, right_indices, depth + 1);
    nodes_[static_cast<size_t>(node_index)].feature = best_feature;
    nodes_[static_cast<size_t>(node_index)].threshold = best_threshold;
    nodes_[static_cast<size_t>(node_index)].left = left;
    nodes_[static_cast<size_t>(node_index)].right = right;
  }
  return node_index;
}

const DecisionTreeClassifier::Node& DecisionTreeClassifier::Descend(
    const double* row) const {
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    int next = row[static_cast<size_t>(node->feature)] <= node->threshold
                   ? node->left
                   : node->right;
    node = &nodes_[static_cast<size_t>(next)];
  }
  return *node;
}

std::vector<int> DecisionTreeClassifier::Predict(const Matrix& features) const {
  NDE_CHECK(fitted_);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const Node& leaf = Descend(features.RowPtr(r));
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (leaf.class_fractions[static_cast<size_t>(c)] >
          leaf.class_fractions[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix DecisionTreeClassifier::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_);
  Matrix proba(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const Node& leaf = Descend(features.RowPtr(r));
    for (int c = 0; c < num_classes_; ++c) {
      proba(r, static_cast<size_t>(c)) =
          leaf.class_fractions[static_cast<size_t>(c)];
    }
  }
  return proba;
}

size_t DecisionTreeClassifier::Depth() const {
  NDE_CHECK(fitted_);
  // Iterative depth computation over the flat node array.
  std::vector<std::pair<int, size_t>> stack = {{0, 1}};
  size_t max_depth = 0;
  while (!stack.empty()) {
    auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.feature >= 0) {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return max_depth;
}

std::unique_ptr<Classifier> DecisionTreeClassifier::Clone() const {
  return std::make_unique<DecisionTreeClassifier>(options_);
}

}  // namespace nde
