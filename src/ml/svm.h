#ifndef NDE_ML_SVM_H_
#define NDE_ML_SVM_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// Configuration for the linear SVM trainer.
struct LinearSvmOptions {
  double lambda = 1e-2;     ///< L2 regularization strength.
  size_t epochs = 200;      ///< Full passes over the data.
  bool standardize = true;  ///< z-score features before training.
};

/// Binary linear support vector machine trained with deterministic
/// full-batch subgradient descent on the hinge loss (Pegasos-style step
/// sizes eta_t = 1 / (lambda * t)).
///
/// Labels must be in {0, 1}; internally mapped to {-1, +1}. Multi-class
/// datasets are rejected at Fit time.
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmOptions options = {});

  Status Fit(const MlDataset& data) override;
  std::vector<int> Predict(const Matrix& features) const override;
  int num_classes() const override { return 2; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "linear_svm"; }

  /// Signed decision value w^T x + b (in standardized space when enabled).
  double DecisionValue(std::span<const double> x) const;
  double DecisionValue(const std::vector<double>& x) const {
    return DecisionValue(std::span<const double>(x));
  }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LinearSvmOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  FeatureScaler scaler_;
  bool fitted_ = false;
};

}  // namespace nde

#endif  // NDE_ML_SVM_H_
