#ifndef NDE_ML_KNN_H_
#define NDE_ML_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// K-nearest-neighbors classifier with Euclidean distance and majority vote
/// (ties broken toward the smaller class id, which keeps behavior
/// deterministic).
///
/// KNN plays a double role in this library: it is both a baseline model and
/// the proxy model that makes Shapley-based data importance tractable
/// (`KnnShapley` in the importance module uses the same distance ordering).
class KnnClassifier : public Classifier {
 public:
  /// `k` must be >= 1.
  explicit KnnClassifier(size_t k = 5);

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override;

  size_t k() const { return k_; }

  /// Indices of the (up to) `k` nearest training rows to `query`, ordered by
  /// increasing distance. Exposed for KNN-Shapley and certain-prediction
  /// analyses. Precondition: fitted.
  std::vector<size_t> Neighbors(const std::vector<double>& query,
                                size_t k) const;

 private:
  size_t k_;
  MlDataset train_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace nde

#endif  // NDE_ML_KNN_H_
