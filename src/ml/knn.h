#ifndef NDE_ML_KNN_H_
#define NDE_ML_KNN_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// K-nearest-neighbors classifier with Euclidean distance and majority vote
/// (ties broken toward the smaller class id, which keeps behavior
/// deterministic).
///
/// KNN plays a double role in this library: it is both a baseline model and
/// the proxy model that makes Shapley-based data importance tractable
/// (`KnnShapley` in the importance module uses the same distance ordering).
class KnnClassifier : public Classifier {
 public:
  /// `k` must be >= 1.
  explicit KnnClassifier(size_t k = 5);

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;

  /// Zero-copy fit: borrows the parent dataset and the coalition indices
  /// instead of copying the rows. Predictions are bit-identical to a fit on
  /// view.Materialize() (distances, tie-breaks and labels all follow the view
  /// order). The parent dataset must outlive this model's use.
  Status FitView(const MlDatasetView& view, int num_classes) override;

  /// KNN supports exact incremental coalition scoring: the context holds the
  /// train-to-eval distance matrix, computed once, and scorers maintain
  /// per-evaluation-point k-nearest windows as rows are added.
  ///
  /// Kernel selection via `options`: the default SoA kernel keeps flat
  /// cutoff/window buffers with a vectorizable candidate-mask pass and is
  /// bit-identical to both the reference row-wise kernel
  /// (options.soa_kernels = false) and the cold FitWithClasses + Predict
  /// path; options.float32 opts into approximate float32 distance storage.
  std::shared_ptr<const CoalitionScorerContext> NewCoalitionScorerContext(
      const MlDataset& train, const Matrix& eval_features, int num_classes,
      const CoalitionScorerOptions& options = {}) const override;

  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override;

  size_t k() const { return k_; }

  /// Indices of the (up to) `k` nearest training rows to `query`, ordered by
  /// increasing distance. Exposed for KNN-Shapley and certain-prediction
  /// analyses. Precondition: fitted.
  std::vector<size_t> Neighbors(std::span<const double> query, size_t k) const;
  std::vector<size_t> Neighbors(const std::vector<double>& query,
                                size_t k) const {
    return Neighbors(std::span<const double>(query), k);
  }

 private:
  // Training-row accessors that hide whether the model owns its rows (train_)
  // or borrows them from a view parent (view_parent_ + view_indices_).
  size_t TrainSize() const {
    return view_parent_ ? view_indices_.size() : train_.size();
  }
  size_t TrainCols() const {
    return view_parent_ ? view_parent_->features.cols()
                        : train_.features.cols();
  }
  const double* TrainRowPtr(size_t i) const {
    return view_parent_ ? view_parent_->features.RowPtr(view_indices_[i])
                        : train_.features.RowPtr(i);
  }
  int TrainLabel(size_t i) const {
    return view_parent_ ? view_parent_->labels[view_indices_[i]]
                        : train_.labels[i];
  }

  size_t k_;
  MlDataset train_;
  const MlDataset* view_parent_ = nullptr;  ///< Borrowed parent when FitView.
  std::vector<size_t> view_indices_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace nde

#endif  // NDE_ML_KNN_H_
