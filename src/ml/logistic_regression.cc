#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

namespace nde {

void SoftmaxRowsInPlace(Matrix* logits) {
  NDE_CHECK(logits != nullptr);
  for (size_t r = 0; r < logits->rows(); ++r) {
    double* row = logits->RowPtr(r);
    double max_logit = row[0];
    for (size_t c = 1; c < logits->cols(); ++c) {
      max_logit = std::max(max_logit, row[c]);
    }
    double total = 0.0;
    for (size_t c = 0; c < logits->cols(); ++c) {
      row[c] = std::exp(row[c] - max_logit);
      total += row[c];
    }
    for (size_t c = 0; c < logits->cols(); ++c) row[c] /= total;
  }
}

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status LogisticRegression::FitWithClasses(const MlDataset& data,
                                          int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit logistic regression on empty data");
  }
  if (num_classes < std::max(data.NumClasses(), 2)) {
    num_classes = std::max(data.NumClasses(), 2);
  }
  num_classes_ = num_classes;
  size_t d = data.features.cols();

  scaler_ = options_.standardize ? FeatureScaler::Fit(data.features)
                                 : FeatureScaler{std::vector<double>(d, 0.0),
                                                 std::vector<double>(d, 1.0)};
  Matrix x = scaler_.Transform(data.features);

  weights_ = Matrix(static_cast<size_t>(num_classes_), d + 1);
  RunEpochs(x, data.labels, options_.epochs);
  fitted_ = true;
  return Status::OK();
}

Status LogisticRegression::FitView(const MlDatasetView& view, int num_classes) {
  if (view.size() == 0) {
    return Status::InvalidArgument("cannot fit logistic regression on empty data");
  }
  if (num_classes < std::max(view.NumClasses(), 2)) {
    num_classes = std::max(view.NumClasses(), 2);
  }
  num_classes_ = num_classes;
  size_t n = view.size();
  size_t d = view.num_features();

  scaler_ = options_.standardize ? FeatureScaler::Fit(view)
                                 : FeatureScaler{std::vector<double>(d, 0.0),
                                                 std::vector<double>(d, 1.0)};
  // Standardize straight off the parent rows; same per-element arithmetic as
  // scaler_.Transform on a materialized subset, minus the subset copy.
  Matrix x(n, d);
  for (size_t r = 0; r < n; ++r) {
    const double* src = view.RowPtr(r);
    double* dst = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      dst[c] = (src[c] - scaler_.mean[c]) / scaler_.stddev[c];
    }
  }
  std::vector<int> labels = view.CopyLabels();

  weights_ = Matrix(static_cast<size_t>(num_classes_), d + 1);
  RunEpochs(x, labels, options_.epochs);
  fitted_ = true;
  return Status::OK();
}

Status LogisticRegression::FitIncremental(const MlDataset& data,
                                          int num_classes) {
  int resolved = std::max({num_classes, data.NumClasses(), 2});
  if (!fitted_ || resolved != num_classes_ ||
      data.features.cols() + 1 != weights_.cols()) {
    return FitWithClasses(data, num_classes);
  }
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit logistic regression on empty data");
  }
  // Keep the previous scaler too: the warm weights live in its feature space,
  // and re-fitting it would silently rescale them.
  Matrix x = scaler_.Transform(data.features);
  RunEpochs(x, data.labels, options_.warm_start_epochs);
  return Status::OK();
}

void LogisticRegression::RunEpochs(const Matrix& x,
                                   const std::vector<int>& labels,
                                   size_t epochs) {
  size_t n = x.rows();
  size_t d = x.cols();
  Matrix gradient(static_cast<size_t>(num_classes_), d + 1);

  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    // Forward pass: probabilities.
    Matrix proba = Logits(x);
    SoftmaxRowsInPlace(&proba);
    // Gradient of mean cross-entropy + L2.
    for (size_t i = 0; i < gradient.size(); ++i) {
      gradient.mutable_data()[i] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.RowPtr(i);
      for (int c = 0; c < num_classes_; ++c) {
        double err = proba(i, static_cast<size_t>(c)) -
                     (labels[i] == c ? 1.0 : 0.0);
        double* grad_row = gradient.RowPtr(static_cast<size_t>(c));
        for (size_t j = 0; j < d; ++j) grad_row[j] += err * xi[j];
        grad_row[d] += err;  // Bias term.
      }
    }
    for (int c = 0; c < num_classes_; ++c) {
      double* grad_row = gradient.RowPtr(static_cast<size_t>(c));
      const double* w_row = weights_.RowPtr(static_cast<size_t>(c));
      for (size_t j = 0; j < d; ++j) {
        grad_row[j] = grad_row[j] * inv_n + options_.l2 * w_row[j];
      }
      grad_row[d] *= inv_n;  // Bias is not regularized.
    }
    gradient.ScaleInPlace(-options_.learning_rate);
    weights_.AddInPlace(gradient);
  }
}

Matrix LogisticRegression::Logits(const Matrix& features) const {
  size_t d = features.cols();
  NDE_CHECK_EQ(d + 1, weights_.cols());
  Matrix logits(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* xi = features.RowPtr(r);
    for (int c = 0; c < num_classes_; ++c) {
      const double* w = weights_.RowPtr(static_cast<size_t>(c));
      double acc = w[d];  // Bias.
      for (size_t j = 0; j < d; ++j) acc += w[j] * xi[j];
      logits(r, static_cast<size_t>(c)) = acc;
    }
  }
  return logits;
}

std::vector<int> LogisticRegression::Predict(const Matrix& features) const {
  Matrix proba = PredictProba(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix LogisticRegression::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_) << "logistic regression not fitted";
  Matrix logits = Logits(scaler_.Transform(features));
  SoftmaxRowsInPlace(&logits);
  return logits;
}

double LogisticRegression::LogLoss(const MlDataset& data) const {
  NDE_CHECK(fitted_);
  Matrix proba = PredictProba(data.features);
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double p = std::max(proba(i, static_cast<size_t>(data.labels[i])), 1e-12);
    total -= std::log(p);
  }
  return data.size() == 0 ? 0.0 : total / static_cast<double>(data.size());
}

std::unique_ptr<Classifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(options_);
}

}  // namespace nde
