#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace nde {

int MlDataset::NumClasses() const {
  int max_label = -1;
  for (int label : labels) max_label = std::max(max_label, label);
  return max_label + 1;
}

MlDataset MlDataset::Subset(const std::vector<size_t>& indices) const {
  MlDataset out;
  out.features = features.SelectRows(indices);
  out.labels.reserve(indices.size());
  for (size_t i : indices) {
    NDE_CHECK_LT(i, labels.size());
    out.labels.push_back(labels[i]);
  }
  return out;
}

int MlDatasetView::NumClasses() const {
  int max_label = -1;
  for (size_t i = 0; i < size(); ++i) max_label = std::max(max_label, label(i));
  return max_label + 1;
}

MlDataset MlDatasetView::Materialize() const {
  MlDataset out;
  out.features = parent_->features.SelectRows(
      {indices_.begin(), indices_.end()});
  out.labels = CopyLabels();
  return out;
}

std::vector<int> MlDatasetView::CopyLabels() const {
  std::vector<int> labels;
  labels.reserve(size());
  for (size_t i = 0; i < size(); ++i) labels.push_back(label(i));
  return labels;
}

MlDataset MlDataset::Without(const std::vector<size_t>& excluded) const {
  std::unordered_set<size_t> skip(excluded.begin(), excluded.end());
  std::vector<size_t> keep;
  keep.reserve(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (skip.find(i) == skip.end()) keep.push_back(i);
  }
  return Subset(keep);
}

Status MlDataset::Validate() const {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument(
        StrFormat("feature rows %zu != label count %zu", features.rows(),
                  labels.size()));
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      return Status::InvalidArgument(
          StrFormat("negative label %d at row %zu", labels[i], i));
    }
  }
  return Status::OK();
}

MlDataset RegressionDataset::ToClassification(double threshold) const {
  MlDataset out;
  out.features = features;
  out.labels.reserve(targets.size());
  for (double t : targets) out.labels.push_back(t >= threshold ? 1 : 0);
  return out;
}

RegressionDataset RegressionDataset::Subset(
    const std::vector<size_t>& indices) const {
  RegressionDataset out;
  out.features = features.SelectRows(indices);
  out.targets.reserve(indices.size());
  for (size_t i : indices) {
    NDE_CHECK_LT(i, targets.size());
    out.targets.push_back(targets[i]);
  }
  return out;
}

SplitResult TrainTestSplit(const MlDataset& data, double test_fraction,
                           Rng* rng) {
  NDE_CHECK(rng != nullptr);
  NDE_CHECK_GT(test_fraction, 0.0);
  NDE_CHECK_LT(test_fraction, 1.0);
  NDE_CHECK_GT(data.size(), 0u);
  std::vector<size_t> perm = rng->Permutation(data.size());
  size_t test_count = std::max<size_t>(
      1, static_cast<size_t>(std::llround(test_fraction *
                                          static_cast<double>(data.size()))));
  test_count = std::min(test_count, data.size() - 1);
  SplitResult split;
  split.test_indices.assign(perm.begin(),
                            perm.begin() + static_cast<ptrdiff_t>(test_count));
  split.train_indices.assign(perm.begin() + static_cast<ptrdiff_t>(test_count),
                             perm.end());
  split.train = data.Subset(split.train_indices);
  split.test = data.Subset(split.test_indices);
  return split;
}

FeatureScaler FeatureScaler::Fit(const Matrix& features) {
  size_t n = features.rows();
  size_t d = features.cols();
  FeatureScaler scaler;
  scaler.mean.assign(d, 0.0);
  scaler.stddev.assign(d, 1.0);
  if (n == 0) return scaler;
  for (size_t r = 0; r < n; ++r) {
    const double* row = features.RowPtr(r);
    for (size_t c = 0; c < d; ++c) scaler.mean[c] += row[c];
  }
  for (double& m : scaler.mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = features.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      double diff = row[c] - scaler.mean[c];
      var[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    double sd = std::sqrt(var[c] / static_cast<double>(n));
    scaler.stddev[c] = sd > 1e-12 ? sd : 1.0;
  }
  return scaler;
}

FeatureScaler FeatureScaler::Fit(const MlDatasetView& view) {
  size_t n = view.size();
  size_t d = view.num_features();
  FeatureScaler scaler;
  scaler.mean.assign(d, 0.0);
  scaler.stddev.assign(d, 1.0);
  if (n == 0) return scaler;
  for (size_t r = 0; r < n; ++r) {
    const double* row = view.RowPtr(r);
    for (size_t c = 0; c < d; ++c) scaler.mean[c] += row[c];
  }
  for (double& m : scaler.mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = view.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      double diff = row[c] - scaler.mean[c];
      var[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    double sd = std::sqrt(var[c] / static_cast<double>(n));
    scaler.stddev[c] = sd > 1e-12 ? sd : 1.0;
  }
  return scaler;
}

Matrix FeatureScaler::Transform(const Matrix& features) const {
  NDE_CHECK_EQ(features.cols(), mean.size());
  Matrix out = features;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - mean[c]) / stddev[c];
    }
  }
  return out;
}

}  // namespace nde
