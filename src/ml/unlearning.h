#ifndef NDE_ML_UNLEARNING_H_
#define NDE_ML_UNLEARNING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/model.h"

namespace nde {

/// Low-latency machine unlearning (the Section 2.4 connection between data
/// debugging and "forgetting critical data fast", cf. HedgeCut): data
/// debugging repeatedly asks what happens when points are removed, and
/// regulation (GDPR/CCPA deletion requests) asks to *actually* remove them
/// without a full retrain.
///
/// A `DecrementalClassifier` supports exact point removal: after
/// `Forget(i)` the model must be indistinguishable from one retrained from
/// scratch on the data without row i.
class DecrementalClassifier : public Classifier {
 public:
  /// Removes training row `original_index` (the index into the dataset
  /// passed to Fit) from the model. Idempotent per index; removing an
  /// already-forgotten or out-of-range index is an error. Must leave the
  /// model exactly equal to a fresh fit on the remaining rows.
  virtual Status Forget(size_t original_index) = 0;

  /// Rows still contributing to the model.
  virtual size_t remaining_size() const = 0;
};

/// Gaussian naive Bayes with exact decremental updates: per-class count,
/// sum and sum-of-squares statistics support O(d) removal of any training
/// point, versus O(n d) retraining.
class DecrementalGaussianNb : public DecrementalClassifier {
 public:
  explicit DecrementalGaussianNb(double var_smoothing = 1e-9);

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "decremental_gaussian_nb"; }

  Status Forget(size_t original_index) override;
  size_t remaining_size() const override { return remaining_; }

 private:
  /// Rebuilds the per-class mean/variance view from the sufficient
  /// statistics (counts, sums, sums of squares) — O(C d).
  void RefreshDerivedState() const;

  double var_smoothing_;
  int num_classes_ = 0;
  size_t remaining_ = 0;
  bool fitted_ = false;

  MlDataset train_;                  // retained rows (for Forget bookkeeping)
  std::vector<bool> forgotten_;
  std::vector<size_t> class_counts_;
  Matrix class_sums_;                // num_classes x d
  Matrix class_sum_squares_;         // num_classes x d

  // Derived (lazily recomputed after Forget).
  mutable bool derived_fresh_ = false;
  mutable Matrix means_;
  mutable Matrix variances_;
  mutable std::vector<double> log_priors_;
};

/// KNN with exact decremental updates: removal just masks the row out of the
/// neighbor search — O(1) removal, identical predictions to a fresh fit.
class DecrementalKnn : public DecrementalClassifier {
 public:
  explicit DecrementalKnn(size_t k = 5);

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "decremental_knn"; }

  Status Forget(size_t original_index) override;
  size_t remaining_size() const override { return remaining_; }

 private:
  size_t k_;
  int num_classes_ = 0;
  size_t remaining_ = 0;
  bool fitted_ = false;
  MlDataset train_;
  std::vector<bool> forgotten_;
};

}  // namespace nde

#endif  // NDE_ML_UNLEARNING_H_
