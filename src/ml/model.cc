#include "ml/model.h"

namespace nde {

Status Classifier::FitView(const MlDatasetView& view, int num_classes) {
  return FitWithClasses(view.Materialize(), num_classes);
}

Matrix Classifier::PredictProba(const Matrix& features) const {
  std::vector<int> predictions = Predict(features);
  Matrix proba(features.rows(), static_cast<size_t>(num_classes()));
  for (size_t r = 0; r < predictions.size(); ++r) {
    int label = predictions[r];
    NDE_CHECK_GE(label, 0);
    NDE_CHECK_LT(label, num_classes());
    proba(r, static_cast<size_t>(label)) = 1.0;
  }
  return proba;
}

}  // namespace nde
