#ifndef NDE_ML_DATASET_H_
#define NDE_ML_DATASET_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace nde {

/// A supervised classification dataset: numeric feature matrix plus integer
/// class labels (0-based, contiguous). This is what models consume after
/// pipeline preprocessing.
struct MlDataset {
  Matrix features;          ///< n x d feature matrix.
  std::vector<int> labels;  ///< n class labels in {0, ..., num_classes-1}.

  size_t size() const { return labels.size(); }
  size_t num_features() const { return features.cols(); }

  /// Largest label + 1 (0 for an empty dataset).
  int NumClasses() const;

  /// Rows at `indices`, in order (indices may repeat).
  MlDataset Subset(const std::vector<size_t>& indices) const;

  /// All rows except those in `excluded` (order preserved). Indices out of
  /// range are ignored.
  MlDataset Without(const std::vector<size_t>& excluded) const;

  /// Consistency check: feature rows == label count, labels non-negative.
  Status Validate() const;
};

/// Zero-copy view of selected rows of a parent MlDataset. The utility fast
/// path threads this through training (`Classifier::FitView`) so evaluating a
/// coalition never materializes its feature rows.
///
/// Lifetime: the view borrows both the parent dataset and the index vector;
/// they must outlive the view. A classifier that *borrows* the view when
/// fitting (see FitView) additionally requires the parent to outlive its use
/// of the fitted model. Indices may repeat and appear in any order; row i of
/// the view is parent row indices[i], exactly as in MlDataset::Subset.
class MlDatasetView {
 public:
  MlDatasetView(const MlDataset& parent, const std::vector<size_t>& indices)
      : parent_(&parent), indices_(indices.data(), indices.size()) {}

  size_t size() const { return indices_.size(); }
  size_t num_features() const { return parent_->features.cols(); }

  /// Parent-row index backing view row `i`.
  size_t parent_index(size_t i) const { return indices_[i]; }
  std::span<const size_t> indices() const { return indices_; }

  const double* RowPtr(size_t i) const {
    return parent_->features.RowPtr(indices_[i]);
  }
  std::span<const double> RowSpan(size_t i) const {
    return parent_->features.RowSpan(indices_[i]);
  }
  int label(size_t i) const { return parent_->labels[indices_[i]]; }

  const MlDataset& parent() const { return *parent_; }

  /// Largest label in the view + 1 (0 for an empty view).
  int NumClasses() const;

  /// Copies the view into an owning dataset; equal to parent.Subset(indices).
  MlDataset Materialize() const;

  /// Copies just the labels (cheap next to the feature rows).
  std::vector<int> CopyLabels() const;

 private:
  const MlDataset* parent_;
  std::span<const size_t> indices_;
};

/// A regression dataset: numeric features plus real-valued targets.
struct RegressionDataset {
  Matrix features;             ///< n x d feature matrix.
  std::vector<double> targets; ///< n real targets.

  size_t size() const { return targets.size(); }
  MlDataset ToClassification(double threshold) const;
  RegressionDataset Subset(const std::vector<size_t>& indices) const;
};

/// Result of a random train/test split.
struct SplitResult {
  MlDataset train;
  MlDataset test;
  std::vector<size_t> train_indices;  ///< original indices of train rows
  std::vector<size_t> test_indices;   ///< original indices of test rows
};

/// Randomly splits `data` with `test_fraction` of rows going to the test
/// side. Precondition: 0 < test_fraction < 1 and data non-empty.
SplitResult TrainTestSplit(const MlDataset& data, double test_fraction,
                           Rng* rng);

/// Standardization statistics (per-feature mean and standard deviation).
struct FeatureScaler {
  std::vector<double> mean;
  std::vector<double> stddev;  ///< zero-variance features get stddev 1.

  /// Computes statistics from `features`.
  static FeatureScaler Fit(const Matrix& features);

  /// Same statistics computed over the rows of a view, without materializing
  /// them. Bit-identical to Fit(view.Materialize().features): rows are
  /// accumulated in view order with the same arithmetic.
  static FeatureScaler Fit(const MlDatasetView& view);

  /// Returns (x - mean) / stddev applied per column.
  Matrix Transform(const Matrix& features) const;
};

}  // namespace nde

#endif  // NDE_ML_DATASET_H_
