#ifndef NDE_ML_NAIVE_BAYES_H_
#define NDE_ML_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// Gaussian naive Bayes classifier: per-class feature means and variances
/// with a small variance floor for numerical stability.
class GaussianNaiveBayes : public Classifier {
 public:
  /// `var_smoothing` is added to every per-class feature variance.
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9);

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;

  /// Gaussian NB supports exact incremental coalition scoring. Scorers keep
  /// sorted member lists (global and per class) and on each Add recompute
  /// only the pushed class's two moment passes, iterating members in sorted
  /// order — the same per-(class, feature) accumulation chains as a cold
  /// two-pass FitWithClasses on the sorted coalition — so Predict() is
  /// bit-identical to cold retraining, regardless of insertion order.
  /// `train` and `eval_features` must outlive the context.
  std::shared_ptr<const CoalitionScorerContext> NewCoalitionScorerContext(
      const MlDataset& train, const Matrix& eval_features, int num_classes,
      const CoalitionScorerOptions& options = {}) const override;

  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "gaussian_nb"; }

 private:
  Matrix LogJoint(const Matrix& features) const;

  double var_smoothing_;
  Matrix means_;      // num_classes x d
  Matrix variances_;  // num_classes x d
  std::vector<double> log_priors_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace nde

#endif  // NDE_ML_NAIVE_BAYES_H_
