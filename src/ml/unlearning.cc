#include "ml/unlearning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "ml/logistic_regression.h"  // SoftmaxRowsInPlace

namespace nde {

namespace {
constexpr double kLogTwoPi = 1.8378770664093454835606594728112;
}  // namespace

DecrementalGaussianNb::DecrementalGaussianNb(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  NDE_CHECK_GE(var_smoothing, 0.0);
}

Status DecrementalGaussianNb::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status DecrementalGaussianNb::FitWithClasses(const MlDataset& data,
                                             int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  num_classes_ = std::max(num_classes, 1);
  train_ = data;
  forgotten_.assign(data.size(), false);
  remaining_ = data.size();

  size_t d = data.features.cols();
  class_counts_.assign(static_cast<size_t>(num_classes_), 0);
  class_sums_ = Matrix(static_cast<size_t>(num_classes_), d);
  class_sum_squares_ = Matrix(static_cast<size_t>(num_classes_), d);
  for (size_t i = 0; i < data.size(); ++i) {
    size_t c = static_cast<size_t>(data.labels[i]);
    ++class_counts_[c];
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      class_sums_(c, j) += row[j];
      class_sum_squares_(c, j) += row[j] * row[j];
    }
  }
  derived_fresh_ = false;
  fitted_ = true;
  return Status::OK();
}

Status DecrementalGaussianNb::Forget(size_t original_index) {
  if (!fitted_) {
    return Status::FailedPrecondition("model is not fitted");
  }
  if (original_index >= forgotten_.size()) {
    return Status::OutOfRange(
        StrFormat("index %zu out of range", original_index));
  }
  if (forgotten_[original_index]) {
    return Status::FailedPrecondition(
        StrFormat("row %zu was already forgotten", original_index));
  }
  if (remaining_ <= 1) {
    return Status::FailedPrecondition("cannot forget the last row");
  }
  forgotten_[original_index] = true;
  --remaining_;
  size_t c = static_cast<size_t>(train_.labels[original_index]);
  NDE_CHECK_GT(class_counts_[c], 0u);
  --class_counts_[c];
  const double* row = train_.features.RowPtr(original_index);
  for (size_t j = 0; j < train_.features.cols(); ++j) {
    class_sums_(c, j) -= row[j];
    class_sum_squares_(c, j) -= row[j] * row[j];
  }
  derived_fresh_ = false;
  return Status::OK();
}

void DecrementalGaussianNb::RefreshDerivedState() const {
  if (derived_fresh_) return;
  size_t d = class_sums_.cols();
  size_t classes = static_cast<size_t>(num_classes_);
  means_ = Matrix(classes, d);
  variances_ = Matrix(classes, d);

  // Global statistics over the remaining rows (fallback for empty classes).
  std::vector<double> global_sum(d, 0.0);
  std::vector<double> global_sum_sq(d, 0.0);
  for (size_t c = 0; c < classes; ++c) {
    for (size_t j = 0; j < d; ++j) {
      global_sum[j] += class_sums_(c, j);
      global_sum_sq[j] += class_sum_squares_(c, j);
    }
  }
  double n = static_cast<double>(remaining_);
  std::vector<double> global_mean(d, 0.0);
  std::vector<double> global_var(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    global_mean[j] = global_sum[j] / n;
    global_var[j] =
        std::max(global_sum_sq[j] / n - global_mean[j] * global_mean[j], 0.0);
  }

  double max_feature_var = 0.0;
  for (size_t c = 0; c < classes; ++c) {
    double count = static_cast<double>(class_counts_[c]);
    for (size_t j = 0; j < d; ++j) {
      if (class_counts_[c] > 0) {
        double mean = class_sums_(c, j) / count;
        means_(c, j) = mean;
        variances_(c, j) = std::max(
            class_sum_squares_(c, j) / count - mean * mean, 0.0);
      } else {
        means_(c, j) = global_mean[j];
        variances_(c, j) = global_var[j];
      }
      max_feature_var = std::max(max_feature_var, variances_(c, j));
    }
  }
  double floor = var_smoothing_ * std::max(max_feature_var, 1.0) + 1e-12;
  for (size_t c = 0; c < classes; ++c) {
    for (size_t j = 0; j < d; ++j) variances_(c, j) += floor;
  }

  log_priors_.assign(classes, 0.0);
  for (size_t c = 0; c < classes; ++c) {
    double prior = (static_cast<double>(class_counts_[c]) + 1.0) /
                   (n + static_cast<double>(num_classes_));
    log_priors_[c] = std::log(prior);
  }
  derived_fresh_ = true;
}

Matrix DecrementalGaussianNb::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_);
  RefreshDerivedState();
  NDE_CHECK_EQ(features.cols(), means_.cols());
  size_t d = features.cols();
  Matrix log_joint(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
      double acc = log_priors_[c];
      for (size_t j = 0; j < d; ++j) {
        double var = variances_(c, j);
        double diff = row[j] - means_(c, j);
        acc -= 0.5 * (kLogTwoPi + std::log(var) + diff * diff / var);
      }
      log_joint(r, c) = acc;
    }
  }
  SoftmaxRowsInPlace(&log_joint);
  return log_joint;
}

std::vector<int> DecrementalGaussianNb::Predict(const Matrix& features) const {
  Matrix proba = PredictProba(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

std::unique_ptr<Classifier> DecrementalGaussianNb::Clone() const {
  return std::make_unique<DecrementalGaussianNb>(var_smoothing_);
}

DecrementalKnn::DecrementalKnn(size_t k) : k_(k) { NDE_CHECK_GE(k, 1u); }

Status DecrementalKnn::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status DecrementalKnn::FitWithClasses(const MlDataset& data, int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  num_classes_ = std::max(num_classes, 1);
  train_ = data;
  forgotten_.assign(data.size(), false);
  remaining_ = data.size();
  fitted_ = true;
  return Status::OK();
}

Status DecrementalKnn::Forget(size_t original_index) {
  if (!fitted_) {
    return Status::FailedPrecondition("model is not fitted");
  }
  if (original_index >= forgotten_.size()) {
    return Status::OutOfRange(
        StrFormat("index %zu out of range", original_index));
  }
  if (forgotten_[original_index]) {
    return Status::FailedPrecondition(
        StrFormat("row %zu was already forgotten", original_index));
  }
  if (remaining_ <= 1) {
    return Status::FailedPrecondition("cannot forget the last row");
  }
  forgotten_[original_index] = true;
  --remaining_;
  return Status::OK();
}

Matrix DecrementalKnn::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_);
  NDE_CHECK_EQ(features.cols(), train_.features.cols());
  size_t n = train_.size();
  Matrix proba(features.rows(), static_cast<size_t>(num_classes_));
  std::vector<double> dist(n);
  std::vector<size_t> order;
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* query = features.RowPtr(r);
    order.clear();
    for (size_t i = 0; i < n; ++i) {
      if (forgotten_[i]) continue;
      const double* row = train_.features.RowPtr(i);
      double acc = 0.0;
      for (size_t j = 0; j < train_.features.cols(); ++j) {
        double diff = row[j] - query[j];
        acc += diff * diff;
      }
      dist[i] = acc;
      order.push_back(i);
    }
    size_t take = std::min(k_, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<ptrdiff_t>(take), order.end(),
                      [&dist](size_t a, size_t b) {
                        if (dist[a] != dist[b]) return dist[a] < dist[b];
                        return a < b;
                      });
    double weight = 1.0 / static_cast<double>(take);
    for (size_t pos = 0; pos < take; ++pos) {
      proba(r, static_cast<size_t>(train_.labels[order[pos]])) += weight;
    }
  }
  return proba;
}

std::vector<int> DecrementalKnn::Predict(const Matrix& features) const {
  Matrix proba = PredictProba(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

std::unique_ptr<Classifier> DecrementalKnn::Clone() const {
  return std::make_unique<DecrementalKnn>(k_);
}

}  // namespace nde
