#ifndef NDE_ML_DECISION_TREE_H_
#define NDE_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// Configuration for the CART decision-tree trainer.
struct DecisionTreeOptions {
  size_t max_depth = 8;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
};

/// CART-style decision-tree classifier: axis-aligned binary splits chosen by
/// Gini impurity reduction over exact midpoints of sorted feature values.
/// Fully deterministic; ties favor lower feature index and smaller threshold.
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeOptions options = {});

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "decision_tree"; }

  /// Number of nodes in the fitted tree (diagnostics). Precondition: fitted.
  size_t NodeCount() const { return nodes_.size(); }

  /// Depth of the fitted tree. Precondition: fitted.
  size_t Depth() const;

 private:
  /// Flat node storage; children referenced by index (-1 = none).
  struct Node {
    int feature = -1;        ///< split feature, -1 for a leaf
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> class_fractions;  ///< leaf class distribution
  };

  int BuildNode(const MlDataset& data, const std::vector<size_t>& indices,
                size_t depth);
  const Node& Descend(const double* row) const;

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace nde

#endif  // NDE_ML_DECISION_TREE_H_
