#ifndef NDE_ML_LINEAR_REGRESSION_H_
#define NDE_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"

namespace nde {

/// Ridge-regularized linear regression solved in closed form via the normal
/// equations. The regression substrate for the uncertainty module (Zorro's
/// baseline, label-flip robustness, certain-model checks).
class RidgeRegression {
 public:
  /// `lambda` >= 0; lambda > 0 guarantees a unique solution.
  explicit RidgeRegression(double lambda = 1e-3, bool fit_intercept = true);

  /// Fits on (features, targets). Returns InvalidArgument on shape mismatch
  /// or FailedPrecondition when the system is singular (lambda == 0 only).
  Status Fit(const RegressionDataset& data);

  /// Predicted target per row. Precondition: fitted.
  std::vector<double> Predict(const Matrix& features) const;

  /// Prediction for a single example.
  double PredictOne(const std::vector<double>& x) const;

  /// Mean squared error on `data`. Precondition: fitted.
  double MeanSquaredError(const RegressionDataset& data) const;

  /// Learned weights (d entries) and intercept.
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  double lambda() const { return lambda_; }
  bool fitted() const { return fitted_; }

  /// The "hat" row a(x) with prediction = a(x)^T y for the training targets
  /// y: a(x) = phi(x)^T (Phi^T Phi + lambda I)^{-1} Phi^T where phi appends
  /// the intercept. Linearity of predictions in y powers the exact
  /// label-flip robustness analysis. Precondition: fitted.
  std::vector<double> HatRow(const std::vector<double>& x) const;

 private:
  double lambda_;
  bool fit_intercept_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
  // Cached factorization inputs for HatRow: (Phi^T Phi + lambda I)^{-1} Phi^T.
  Matrix hat_basis_;  // (d+1) x n
};

}  // namespace nde

#endif  // NDE_ML_LINEAR_REGRESSION_H_
