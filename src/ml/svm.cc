#include "ml/svm.h"

#include <algorithm>
#include <cmath>

namespace nde {

LinearSvm::LinearSvm(LinearSvmOptions options) : options_(options) {
  NDE_CHECK_GT(options_.lambda, 0.0);
}

Status LinearSvm::Fit(const MlDataset& data) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit SVM on empty data");
  }
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument("LinearSvm supports binary labels only");
  }
  size_t n = data.size();
  size_t d = data.features.cols();
  scaler_ = options_.standardize ? FeatureScaler::Fit(data.features)
                                 : FeatureScaler{std::vector<double>(d, 0.0),
                                                 std::vector<double>(d, 1.0)};
  Matrix x = scaler_.Transform(data.features);

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t epoch = 1; epoch <= options_.epochs; ++epoch) {
    double eta = 1.0 / (options_.lambda * static_cast<double>(epoch));
    std::vector<double> grad(d, 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.RowPtr(i);
      double yi = data.labels[i] == 1 ? 1.0 : -1.0;
      double margin = bias_;
      for (size_t j = 0; j < d; ++j) margin += weights_[j] * xi[j];
      if (yi * margin < 1.0) {
        for (size_t j = 0; j < d; ++j) grad[j] -= yi * xi[j];
        grad_bias -= yi;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_n + options_.lambda * weights_[j];
      weights_[j] -= eta * grad[j];
    }
    bias_ -= eta * grad_bias * inv_n;
  }
  fitted_ = true;
  return Status::OK();
}

double LinearSvm::DecisionValue(std::span<const double> x) const {
  NDE_CHECK(fitted_);
  NDE_CHECK_EQ(x.size(), weights_.size());
  double acc = bias_;
  for (size_t j = 0; j < x.size(); ++j) {
    double standardized = (x[j] - scaler_.mean[j]) / scaler_.stddev[j];
    acc += weights_[j] * standardized;
  }
  return acc;
}

std::vector<int> LinearSvm::Predict(const Matrix& features) const {
  NDE_CHECK(fitted_);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    out[r] = DecisionValue(features.RowSpan(r)) >= 0.0 ? 1 : 0;
  }
  return out;
}

std::unique_ptr<Classifier> LinearSvm::Clone() const {
  return std::make_unique<LinearSvm>(options_);
}

}  // namespace nde
