#ifndef NDE_ML_MODEL_H_
#define NDE_ML_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"

namespace nde {

/// Abstract multi-class classifier. All models in the library implement this
/// interface so importance methods, cleaning strategies and benchmarks can be
/// written once against it.
///
/// Contract:
///   - `Fit` must be called before `Predict`/`PredictProba`.
///   - Labels are 0-based; `Fit` learns `num_classes = max(label)+1` classes
///     (callers may pass an explicit class count via the dataset if a class
///     is absent from a subset — see `FitWithClasses`).
///   - Models are deterministic given the same data and configuration.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Returns InvalidArgument for inconsistent data.
  virtual Status Fit(const MlDataset& data) = 0;

  /// Trains knowing the total class count (subsets may miss classes).
  /// Default: delegates to Fit.
  virtual Status FitWithClasses(const MlDataset& data, int num_classes) {
    (void)num_classes;
    return Fit(data);
  }

  /// Predicted class per row. Precondition: fitted.
  virtual std::vector<int> Predict(const Matrix& features) const = 0;

  /// Class-probability estimates, n x num_classes. Models without calibrated
  /// probabilities return one-hot rows of their hard predictions.
  virtual Matrix PredictProba(const Matrix& features) const;

  /// Number of classes the model was fitted with. Precondition: fitted.
  virtual int num_classes() const = 0;

  /// Deep copy with the same configuration (fitted state need not carry).
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Short human-readable identifier ("knn(k=5)", "logreg", ...).
  virtual std::string name() const = 0;
};

/// A factory for fresh, unfitted classifiers of a fixed configuration.
/// Importance methods retrain many times; they take a factory rather than a
/// model instance.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace nde

#endif  // NDE_ML_MODEL_H_
