#ifndef NDE_ML_MODEL_H_
#define NDE_ML_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"

namespace nde {

class Arena;

/// Kernel knobs for CoalitionScorerContext construction. Defaults preserve
/// the exact bit-level semantics of the cold training path.
struct CoalitionScorerOptions {
  /// Use the structure-of-arrays kernels (flat cutoff/window buffers,
  /// branch-light contiguous inner loops). Bit-identical to the reference
  /// row-wise kernels; off only to benchmark the layout difference.
  bool soa_kernels = true;

  /// Store precomputed distances in float32 instead of float64 (KNN only).
  /// Halves the kernel's memory traffic and doubles SIMD width but changes
  /// bits, so it is opt-in and never part of the default configuration.
  /// Implies the SoA kernels.
  bool float32 = false;
};

/// Incrementally scores a growing coalition of training rows against a fixed
/// evaluation set (see CoalitionScorerContext). Add() admits one parent-row
/// index at a time; Predict() returns the evaluation-set predictions of the
/// model trained on the current coalition.
///
/// Contract: Predict() after any sequence of Add() calls is bit-identical to
/// a cold FitWithClasses on the same coalition followed by Predict on the
/// evaluation features, regardless of insertion order. That exactness is what
/// lets the prefix-scan fast path replace per-prefix retraining without
/// changing estimator results. A scorer is single-threaded.
class CoalitionScorer {
 public:
  virtual ~CoalitionScorer() = default;

  /// Adds training row `train_index` (an index into the context's training
  /// set) to the coalition.
  virtual void Add(size_t train_index) = 0;

  /// Predictions for the context's evaluation rows under the current
  /// coalition. The reference stays valid until the next Add/Predict call.
  /// Precondition: at least one Add().
  virtual const std::vector<int>& Predict() = 0;
};

/// Immutable shared precomputation for coalition scorers over one fixed
/// (train, eval) pair — e.g. the train-to-eval distance matrix for KNN.
/// Built once per utility; NewScorer() is then cheap enough to call once per
/// permutation. Thread-safe: NewScorer may be called concurrently, and the
/// scorers it returns are independent.
class CoalitionScorerContext {
 public:
  virtual ~CoalitionScorerContext() = default;

  /// A fresh scorer over the empty coalition. When `arena` is non-null the
  /// scorer carves its window/statistics buffers from it instead of the heap;
  /// the arena must outlive the scorer and belongs to it exclusively until
  /// the scorer is destroyed (scorers are single-threaded, so one arena per
  /// permutation scan suffices). Arena placement never changes results.
  virtual std::unique_ptr<CoalitionScorer> NewScorer(Arena* arena) const = 0;

  /// Heap-backed convenience overload.
  std::unique_ptr<CoalitionScorer> NewScorer() const {
    return NewScorer(nullptr);
  }
};

/// Abstract multi-class classifier. All models in the library implement this
/// interface so importance methods, cleaning strategies and benchmarks can be
/// written once against it.
///
/// Contract:
///   - `Fit` must be called before `Predict`/`PredictProba`.
///   - Labels are 0-based; `Fit` learns `num_classes = max(label)+1` classes
///     (callers may pass an explicit class count via the dataset if a class
///     is absent from a subset — see `FitWithClasses`).
///   - Models are deterministic given the same data and configuration.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Returns InvalidArgument for inconsistent data.
  virtual Status Fit(const MlDataset& data) = 0;

  /// Trains knowing the total class count (subsets may miss classes).
  /// Default: delegates to Fit.
  virtual Status FitWithClasses(const MlDataset& data, int num_classes) {
    (void)num_classes;
    return Fit(data);
  }

  /// Trains on a zero-copy row view with results bit-identical to
  /// FitWithClasses(view.Materialize(), num_classes) — which is also the
  /// default implementation. Models that can train straight off the parent
  /// rows override this to skip the coalition copy; an override that keeps
  /// *borrowing* the view after returning (KnnClassifier does) requires the
  /// parent dataset to outlive the model's use.
  virtual Status FitView(const MlDatasetView& view, int num_classes);

  /// Refits on `data` reusing the previously fitted state as the starting
  /// point when the model supports warm starts (and shapes allow). The
  /// default is an exact refit from scratch, so callers must treat this as an
  /// *approximate* Fit: warm-started results may differ from a cold fit.
  virtual Status FitIncremental(const MlDataset& data, int num_classes) {
    return FitWithClasses(data, num_classes);
  }

  /// A scorer context for models that support exact incremental coalition
  /// scoring over (`train`, `eval_features`); nullptr (the default) when the
  /// model has no such fast path. Both arguments must outlive the context.
  /// `options` selects kernel variants; every default-options variant is
  /// bit-identical to the cold path, and approximate variants (float32) are
  /// only taken when explicitly requested.
  virtual std::shared_ptr<const CoalitionScorerContext>
  NewCoalitionScorerContext(const MlDataset& train, const Matrix& eval_features,
                            int num_classes,
                            const CoalitionScorerOptions& options = {}) const {
    (void)train;
    (void)eval_features;
    (void)num_classes;
    (void)options;
    return nullptr;
  }

  /// Predicted class per row. Precondition: fitted.
  virtual std::vector<int> Predict(const Matrix& features) const = 0;

  /// Class-probability estimates, n x num_classes. Models without calibrated
  /// probabilities return one-hot rows of their hard predictions.
  virtual Matrix PredictProba(const Matrix& features) const;

  /// Number of classes the model was fitted with. Precondition: fitted.
  virtual int num_classes() const = 0;

  /// Deep copy with the same configuration (fitted state need not carry).
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Short human-readable identifier ("knn(k=5)", "logreg", ...).
  virtual std::string name() const = 0;
};

/// A factory for fresh, unfitted classifiers of a fixed configuration.
/// Importance methods retrain many times; they take a factory rather than a
/// model instance.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace nde

#endif  // NDE_ML_MODEL_H_
