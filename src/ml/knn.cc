#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace nde {

KnnClassifier::KnnClassifier(size_t k) : k_(k) { NDE_CHECK_GE(k, 1u); }

Status KnnClassifier::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status KnnClassifier::FitWithClasses(const MlDataset& data, int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit KNN on an empty dataset");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  train_ = data;
  num_classes_ = std::max(num_classes, 1);
  fitted_ = true;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(const std::vector<double>& query,
                                             size_t k) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  size_t n = train_.size();
  std::vector<double> dist(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = train_.features.RowPtr(i);
    double acc = 0.0;
    for (size_t c = 0; c < train_.features.cols(); ++c) {
      double diff = row[c] - query[c];
      acc += diff * diff;
    }
    dist[i] = acc;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  size_t take = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&dist](size_t a, size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return a < b;  // Stable tie-break for determinism.
                    });
  order.resize(take);
  return order;
}

std::vector<int> KnnClassifier::Predict(const Matrix& features) const {
  std::vector<int> out(features.rows());
  Matrix proba = PredictProba(features);
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix KnnClassifier::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  NDE_CHECK_EQ(features.cols(), train_.features.cols());
  Matrix proba(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    std::vector<size_t> neighbors = Neighbors(features.Row(r), k_);
    double weight = 1.0 / static_cast<double>(neighbors.size());
    for (size_t idx : neighbors) {
      proba(r, static_cast<size_t>(train_.labels[idx])) += weight;
    }
  }
  return proba;
}

std::unique_ptr<Classifier> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(k_);
}

std::string KnnClassifier::name() const {
  return StrFormat("knn(k=%zu)", k_);
}

}  // namespace nde
