#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace nde {

KnnClassifier::KnnClassifier(size_t k) : k_(k) { NDE_CHECK_GE(k, 1u); }

Status KnnClassifier::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status KnnClassifier::FitWithClasses(const MlDataset& data, int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit KNN on an empty dataset");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  train_ = data;
  view_parent_ = nullptr;
  view_indices_.clear();
  num_classes_ = std::max(num_classes, 1);
  fitted_ = true;
  return Status::OK();
}

Status KnnClassifier::FitView(const MlDatasetView& view, int num_classes) {
  if (view.size() == 0) {
    return Status::InvalidArgument("cannot fit KNN on an empty dataset");
  }
  if (num_classes < view.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  train_ = MlDataset{};  // Drop any previously owned rows.
  view_parent_ = &view.parent();
  view_indices_.assign(view.indices().begin(), view.indices().end());
  num_classes_ = std::max(num_classes, 1);
  fitted_ = true;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(std::span<const double> query,
                                             size_t k) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  size_t n = TrainSize();
  size_t d = TrainCols();
  std::vector<double> dist(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = TrainRowPtr(i);
    double acc = 0.0;
    for (size_t c = 0; c < d; ++c) {
      double diff = row[c] - query[c];
      acc += diff * diff;
    }
    dist[i] = acc;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  size_t take = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&dist](size_t a, size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return a < b;  // Stable tie-break for determinism.
                    });
  order.resize(take);
  return order;
}

std::vector<int> KnnClassifier::Predict(const Matrix& features) const {
  std::vector<int> out(features.rows());
  Matrix proba = PredictProba(features);
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix KnnClassifier::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  NDE_CHECK_EQ(features.cols(), TrainCols());
  Matrix proba(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    std::vector<size_t> neighbors = Neighbors(features.RowSpan(r), k_);
    double weight = 1.0 / static_cast<double>(neighbors.size());
    for (size_t idx : neighbors) {
      proba(r, static_cast<size_t>(TrainLabel(idx))) += weight;
    }
  }
  return proba;
}

namespace {

class KnnCoalitionContext;

/// Maintains, per evaluation point, a sorted window of the (up to) k nearest
/// coalition rows keyed by (distance, parent index). Inserting in any order
/// yields the same window as the fitted classifier's partial_sort over the
/// sorted coalition, and the integer class-count argmax below matches
/// PredictProba's weighted argmax (constant positive weight, strict `>`
/// keeping the smaller class id) — so Predict() is bit-identical to the cold
/// path, as CoalitionScorer requires.
class KnnCoalitionScorer : public CoalitionScorer {
 public:
  explicit KnnCoalitionScorer(const KnnCoalitionContext* context);

  void Add(size_t train_index) override;
  const std::vector<int>& Predict() override;

 private:
  const KnnCoalitionContext* context_;
  size_t num_eval_;
  size_t k_;
  std::vector<double> top_dist_;  ///< num_eval x k windows, row-major.
  std::vector<size_t> top_idx_;
  std::vector<size_t> counts_;  ///< Occupied window slots per eval point.
  std::vector<size_t> class_counts_;
  std::vector<int> predictions_;
};

class KnnCoalitionContext : public CoalitionScorerContext {
 public:
  KnnCoalitionContext(const MlDataset& train, const Matrix& eval_features,
                      size_t k, int num_classes)
      : labels_(&train.labels),
        k_(k),
        num_classes_(num_classes),
        distances_(train.size(), eval_features.rows()) {
    size_t d = train.features.cols();
    for (size_t i = 0; i < train.size(); ++i) {
      const double* row = train.features.RowPtr(i);
      for (size_t e = 0; e < eval_features.rows(); ++e) {
        const double* query = eval_features.RowPtr(e);
        double acc = 0.0;
        for (size_t c = 0; c < d; ++c) {
          double diff = row[c] - query[c];
          acc += diff * diff;
        }
        distances_(i, e) = acc;
      }
    }
  }

  std::unique_ptr<CoalitionScorer> NewScorer() const override {
    return std::make_unique<KnnCoalitionScorer>(this);
  }

  /// Squared distance from training row `i` to evaluation row `e`; row-major
  /// in `i`, so a scorer's Add(i) streams one contiguous row.
  double distance(size_t i, size_t e) const { return distances_(i, e); }
  int label(size_t i) const { return (*labels_)[i]; }
  size_t num_eval() const { return distances_.cols(); }
  size_t k() const { return k_; }
  int num_classes() const { return num_classes_; }

 private:
  const std::vector<int>* labels_;
  size_t k_;
  int num_classes_;
  Matrix distances_;
};

KnnCoalitionScorer::KnnCoalitionScorer(const KnnCoalitionContext* context)
    : context_(context),
      num_eval_(context->num_eval()),
      k_(context->k()),
      top_dist_(num_eval_ * k_, 0.0),
      top_idx_(num_eval_ * k_, 0),
      counts_(num_eval_, 0),
      class_counts_(static_cast<size_t>(context->num_classes()), 0),
      predictions_(num_eval_, 0) {}

void KnnCoalitionScorer::Add(size_t train_index) {
  for (size_t e = 0; e < num_eval_; ++e) {
    double dist = context_->distance(train_index, e);
    double* window_dist = &top_dist_[e * k_];
    size_t* window_idx = &top_idx_[e * k_];
    size_t count = counts_[e];
    // Insertion position under the (distance, parent index) order. Parent
    // indices are unique, so the key is a strict total order.
    size_t pos = count;
    while (pos > 0 && (dist < window_dist[pos - 1] ||
                       (dist == window_dist[pos - 1] &&
                        train_index < window_idx[pos - 1]))) {
      --pos;
    }
    if (pos >= k_) continue;  // Farther than every kept neighbor.
    size_t new_count = std::min(count + 1, k_);
    for (size_t j = new_count; j-- > pos + 1;) {
      window_dist[j] = window_dist[j - 1];
      window_idx[j] = window_idx[j - 1];
    }
    window_dist[pos] = dist;
    window_idx[pos] = train_index;
    counts_[e] = new_count;
  }
}

const std::vector<int>& KnnCoalitionScorer::Predict() {
  int num_classes = context_->num_classes();
  for (size_t e = 0; e < num_eval_; ++e) {
    std::fill(class_counts_.begin(), class_counts_.end(), size_t{0});
    const size_t* window_idx = &top_idx_[e * k_];
    for (size_t j = 0; j < counts_[e]; ++j) {
      ++class_counts_[static_cast<size_t>(context_->label(window_idx[j]))];
    }
    int best = 0;
    for (int c = 1; c < num_classes; ++c) {
      if (class_counts_[static_cast<size_t>(c)] >
          class_counts_[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    predictions_[e] = best;
  }
  return predictions_;
}

}  // namespace

std::shared_ptr<const CoalitionScorerContext>
KnnClassifier::NewCoalitionScorerContext(const MlDataset& train,
                                         const Matrix& eval_features,
                                         int num_classes) const {
  if (train.size() == 0 || eval_features.rows() == 0) return nullptr;
  if (num_classes < train.NumClasses()) num_classes = train.NumClasses();
  return std::make_shared<KnnCoalitionContext>(train, eval_features, k_,
                                               std::max(num_classes, 1));
}

std::unique_ptr<Classifier> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(k_);
}

std::string KnnClassifier::name() const {
  return StrFormat("knn(k=%zu)", k_);
}

}  // namespace nde
