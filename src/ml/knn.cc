#include "ml/knn.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/arena.h"
#include "common/string_util.h"

namespace nde {

KnnClassifier::KnnClassifier(size_t k) : k_(k) { NDE_CHECK_GE(k, 1u); }

Status KnnClassifier::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status KnnClassifier::FitWithClasses(const MlDataset& data, int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit KNN on an empty dataset");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  train_ = data;
  view_parent_ = nullptr;
  view_indices_.clear();
  num_classes_ = std::max(num_classes, 1);
  fitted_ = true;
  return Status::OK();
}

Status KnnClassifier::FitView(const MlDatasetView& view, int num_classes) {
  if (view.size() == 0) {
    return Status::InvalidArgument("cannot fit KNN on an empty dataset");
  }
  if (num_classes < view.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  train_ = MlDataset{};  // Drop any previously owned rows.
  view_parent_ = &view.parent();
  view_indices_.assign(view.indices().begin(), view.indices().end());
  num_classes_ = std::max(num_classes, 1);
  fitted_ = true;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(std::span<const double> query,
                                             size_t k) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  size_t n = TrainSize();
  size_t d = TrainCols();
  std::vector<double> dist(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = TrainRowPtr(i);
    double acc = 0.0;
    for (size_t c = 0; c < d; ++c) {
      double diff = row[c] - query[c];
      acc += diff * diff;
    }
    dist[i] = acc;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  size_t take = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&dist](size_t a, size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return a < b;  // Stable tie-break for determinism.
                    });
  order.resize(take);
  return order;
}

std::vector<int> KnnClassifier::Predict(const Matrix& features) const {
  std::vector<int> out(features.rows());
  Matrix proba = PredictProba(features);
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (proba(r, static_cast<size_t>(c)) >
          proba(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix KnnClassifier::PredictProba(const Matrix& features) const {
  NDE_CHECK(fitted_) << "KNN not fitted";
  NDE_CHECK_EQ(features.cols(), TrainCols());
  Matrix proba(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    std::vector<size_t> neighbors = Neighbors(features.RowSpan(r), k_);
    double weight = 1.0 / static_cast<double>(neighbors.size());
    for (size_t idx : neighbors) {
      proba(r, static_cast<size_t>(TrainLabel(idx))) += weight;
    }
  }
  return proba;
}

namespace {

class KnnCoalitionContext;

/// The reference row-wise kernel (PR 3), kept as the comparison point for
/// BM_KnnKernel and the bit-identity sweep in determinism_test: the SoA
/// kernel below must produce byte-identical windows and predictions.
///
/// Maintains, per evaluation point, a sorted window of the (up to) k nearest
/// coalition rows keyed by (distance, parent index). Inserting in any order
/// yields the same window as the fitted classifier's partial_sort over the
/// sorted coalition, and the integer class-count argmax below matches
/// PredictProba's weighted argmax (constant positive weight, strict `>`
/// keeping the smaller class id) — so Predict() is bit-identical to the cold
/// path, as CoalitionScorer requires.
class KnnCoalitionScorer : public CoalitionScorer {
 public:
  explicit KnnCoalitionScorer(const KnnCoalitionContext* context);

  void Add(size_t train_index) override;
  const std::vector<int>& Predict() override;

 private:
  const KnnCoalitionContext* context_;
  size_t num_eval_;
  size_t k_;
  std::vector<double> top_dist_;  ///< num_eval x k windows, row-major.
  std::vector<size_t> top_idx_;
  std::vector<size_t> counts_;  ///< Occupied window slots per eval point.
  std::vector<size_t> class_counts_;
  std::vector<int> predictions_;
};

class KnnCoalitionContext : public CoalitionScorerContext {
 public:
  KnnCoalitionContext(const MlDataset& train, const Matrix& eval_features,
                      size_t k, int num_classes)
      : labels_(&train.labels),
        k_(k),
        num_classes_(num_classes),
        distances_(train.size(), eval_features.rows()) {
    size_t d = train.features.cols();
    for (size_t i = 0; i < train.size(); ++i) {
      const double* row = train.features.RowPtr(i);
      for (size_t e = 0; e < eval_features.rows(); ++e) {
        const double* query = eval_features.RowPtr(e);
        double acc = 0.0;
        for (size_t c = 0; c < d; ++c) {
          double diff = row[c] - query[c];
          acc += diff * diff;
        }
        distances_(i, e) = acc;
      }
    }
  }

  std::unique_ptr<CoalitionScorer> NewScorer(Arena* arena) const override {
    (void)arena;  // The reference kernel keeps plain vector storage.
    return std::make_unique<KnnCoalitionScorer>(this);
  }

  /// Squared distance from training row `i` to evaluation row `e`; row-major
  /// in `i`, so a scorer's Add(i) streams one contiguous row.
  double distance(size_t i, size_t e) const { return distances_(i, e); }
  int label(size_t i) const { return (*labels_)[i]; }
  size_t num_eval() const { return distances_.cols(); }
  size_t k() const { return k_; }
  int num_classes() const { return num_classes_; }

 private:
  const std::vector<int>* labels_;
  size_t k_;
  int num_classes_;
  Matrix distances_;
};

KnnCoalitionScorer::KnnCoalitionScorer(const KnnCoalitionContext* context)
    : context_(context),
      num_eval_(context->num_eval()),
      k_(context->k()),
      top_dist_(num_eval_ * k_, 0.0),
      top_idx_(num_eval_ * k_, 0),
      counts_(num_eval_, 0),
      class_counts_(static_cast<size_t>(context->num_classes()), 0),
      predictions_(num_eval_, 0) {}

void KnnCoalitionScorer::Add(size_t train_index) {
  for (size_t e = 0; e < num_eval_; ++e) {
    double dist = context_->distance(train_index, e);
    double* window_dist = &top_dist_[e * k_];
    size_t* window_idx = &top_idx_[e * k_];
    size_t count = counts_[e];
    // Insertion position under the (distance, parent index) order. Parent
    // indices are unique, so the key is a strict total order.
    size_t pos = count;
    while (pos > 0 && (dist < window_dist[pos - 1] ||
                       (dist == window_dist[pos - 1] &&
                        train_index < window_idx[pos - 1]))) {
      --pos;
    }
    if (pos >= k_) continue;  // Farther than every kept neighbor.
    size_t new_count = std::min(count + 1, k_);
    for (size_t j = new_count; j-- > pos + 1;) {
      window_dist[j] = window_dist[j - 1];
      window_idx[j] = window_idx[j - 1];
    }
    window_dist[pos] = dist;
    window_idx[pos] = train_index;
    counts_[e] = new_count;
  }
}

const std::vector<int>& KnnCoalitionScorer::Predict() {
  int num_classes = context_->num_classes();
  for (size_t e = 0; e < num_eval_; ++e) {
    std::fill(class_counts_.begin(), class_counts_.end(), size_t{0});
    const size_t* window_idx = &top_idx_[e * k_];
    for (size_t j = 0; j < counts_[e]; ++j) {
      ++class_counts_[static_cast<size_t>(context_->label(window_idx[j]))];
    }
    int best = 0;
    for (int c = 1; c < num_classes; ++c) {
      if (class_counts_[static_cast<size_t>(c)] >
          class_counts_[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    predictions_[e] = best;
  }
  return predictions_;
}

// ---------------------------------------------------------------------------
// SoA kernel: the same window algebra restructured around flat
// structure-of-arrays buffers so the hot loops stay contiguous and
// branch-light.
//
//   - Distances live in one train-major Dist array; Add(i) streams exactly
//     one cache-resident row.
//   - A per-eval-point cutoff array (the current k-th distance, +inf while
//     the window is underfull) turns the common no-op case into a
//     vectorizable compare over the distance row; only evaluation points
//     whose window actually changes take the scalar insertion path.
//   - Class counts and the argmax prediction are maintained incrementally on
//     insertion instead of being recounted for every window on every
//     Predict(), so Predict() is a pointer return.
//
// For Dist = double the arithmetic is identical to the reference kernel
// operation for operation (same distance accumulation order, same
// (distance, parent index) window order, same strict-`>` argmax), so results
// are bit-identical. Dist = float is the opt-in approximate float32 path:
// half the memory traffic, twice the SIMD lanes, different bits.
// ---------------------------------------------------------------------------

template <typename Dist>
class KnnSoaContext;

template <typename Dist>
class KnnSoaScorer final : public CoalitionScorer {
 public:
  KnnSoaScorer(const KnnSoaContext<Dist>* context, Arena* arena);

  void Add(size_t train_index) override;
  const std::vector<int>& Predict() override { return predictions_; }

 private:
  void Insert(size_t e, uint32_t train_index, Dist dist);

  const KnnSoaContext<Dist>* context_;
  size_t num_eval_;
  size_t k_;
  int num_classes_;
  // Flat SoA state, carved out of one block (arena or owned_):
  Dist* cutoff_;           ///< num_eval; +inf while the window is underfull.
  Dist* window_dist_;      ///< num_eval x k, row-major.
  uint32_t* window_idx_;   ///< num_eval x k parent indices.
  uint32_t* counts_;       ///< Occupied slots per eval point.
  uint32_t* class_counts_; ///< num_eval x num_classes.
  uint8_t* mask_;          ///< Per-Add candidate mask scratch.
  std::vector<int> predictions_;  ///< Maintained incrementally on Insert.
  std::vector<char> owned_;       ///< Backing block when no arena is given.
};

template <typename Dist>
class KnnSoaContext final : public CoalitionScorerContext {
 public:
  KnnSoaContext(const MlDataset& train, const Matrix& eval_features, size_t k,
                int num_classes)
      : labels_(train.labels),
        k_(k),
        num_classes_(num_classes),
        num_eval_(eval_features.rows()),
        distances_(train.size() * eval_features.rows()) {
    NDE_CHECK_LT(train.size(), std::numeric_limits<uint32_t>::max());
    size_t n = train.size();
    size_t m = num_eval_;
    size_t d = train.features.cols();
    // Transposed (feature-major) evaluation features: the accumulation loop
    // below then runs contiguously over evaluation points. Interchanging the
    // (e, c) loops does not touch any per-element accumulation chain — each
    // distance still sums diff*diff over features in index order — so the
    // double path stays bit-identical to the reference kernel and to
    // KnnClassifier::Neighbors.
    std::vector<Dist> eval_t(d * m);
    for (size_t e = 0; e < m; ++e) {
      const double* query = eval_features.RowPtr(e);
      for (size_t c = 0; c < d; ++c) {
        eval_t[c * m + e] = static_cast<Dist>(query[c]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const double* row = train.features.RowPtr(i);
      Dist* out = distances_.data() + i * m;
      std::fill(out, out + m, Dist{0});
      for (size_t c = 0; c < d; ++c) {
        const Dist value = static_cast<Dist>(row[c]);
        const Dist* queries = eval_t.data() + c * m;
        for (size_t e = 0; e < m; ++e) {
          Dist diff = value - queries[e];
          out[e] += diff * diff;
        }
      }
    }
  }

  std::unique_ptr<CoalitionScorer> NewScorer(Arena* arena) const override {
    return std::make_unique<KnnSoaScorer<Dist>>(this, arena);
  }

  /// Contiguous distances from training row `i` to every evaluation row.
  const Dist* DistanceRow(size_t i) const {
    return distances_.data() + i * num_eval_;
  }
  int label(size_t i) const { return labels_[i]; }
  size_t num_eval() const { return num_eval_; }
  size_t k() const { return k_; }
  int num_classes() const { return num_classes_; }

 private:
  std::vector<int> labels_;  ///< Owned copy: one indirection less in Insert.
  size_t k_;
  int num_classes_;
  size_t num_eval_;
  std::vector<Dist> distances_;  ///< n x num_eval, train-major.
};

template <typename Dist>
KnnSoaScorer<Dist>::KnnSoaScorer(const KnnSoaContext<Dist>* context,
                                 Arena* arena)
    : context_(context),
      num_eval_(context->num_eval()),
      k_(context->k()),
      num_classes_(context->num_classes()),
      predictions_(num_eval_, 0) {
  const size_t classes = static_cast<size_t>(num_classes_);
  // One block for all SoA arrays, widest-aligned field first.
  const size_t cutoff_bytes = num_eval_ * sizeof(Dist);
  const size_t window_dist_bytes = num_eval_ * k_ * sizeof(Dist);
  const size_t window_idx_bytes = num_eval_ * k_ * sizeof(uint32_t);
  const size_t counts_bytes = num_eval_ * sizeof(uint32_t);
  const size_t class_counts_bytes = num_eval_ * classes * sizeof(uint32_t);
  const size_t mask_bytes = num_eval_ * sizeof(uint8_t);
  const size_t total = cutoff_bytes + window_dist_bytes + window_idx_bytes +
                       counts_bytes + class_counts_bytes + mask_bytes;
  char* block;
  if (arena != nullptr) {
    block = static_cast<char*>(arena->Allocate(total, alignof(double)));
  } else {
    owned_.resize(total);
    block = owned_.data();
  }
  cutoff_ = reinterpret_cast<Dist*>(block);
  window_dist_ = reinterpret_cast<Dist*>(block + cutoff_bytes);
  window_idx_ =
      reinterpret_cast<uint32_t*>(block + cutoff_bytes + window_dist_bytes);
  counts_ = reinterpret_cast<uint32_t*>(block + cutoff_bytes +
                                        window_dist_bytes + window_idx_bytes);
  class_counts_ = counts_ + num_eval_;
  mask_ = reinterpret_cast<uint8_t*>(block + total - mask_bytes);
  std::fill(cutoff_, cutoff_ + num_eval_,
            std::numeric_limits<Dist>::infinity());
  std::fill(counts_, counts_ + num_eval_, uint32_t{0});
  std::fill(class_counts_, class_counts_ + num_eval_ * classes, uint32_t{0});
}

template <typename Dist>
void KnnSoaScorer<Dist>::Add(size_t train_index) {
  const Dist* dist_row = context_->DistanceRow(train_index);
  const Dist* cutoff = cutoff_;
  uint8_t* mask = mask_;
  const size_t m = num_eval_;
  // Pass 1, branch-light and auto-vectorizable: a row entering the window
  // must satisfy dist <= cutoff (underfull windows keep cutoff at +inf, and
  // dist == cutoff can still displace a larger parent index). Once windows
  // are warm this filters out nearly every evaluation point.
  for (size_t e = 0; e < m; ++e) mask[e] = dist_row[e] <= cutoff[e];
  // Pass 2: scalar insertion only where the mask fired.
  const uint32_t index32 = static_cast<uint32_t>(train_index);
  for (size_t e = 0; e < m; ++e) {
    if (mask[e]) Insert(e, index32, dist_row[e]);
  }
}

template <typename Dist>
void KnnSoaScorer<Dist>::Insert(size_t e, uint32_t train_index, Dist dist) {
  Dist* wd = window_dist_ + e * k_;
  uint32_t* wi = window_idx_ + e * k_;
  const size_t count = counts_[e];
  // Insertion position under the strict (distance, parent index) total
  // order — identical to the reference kernel's walk.
  size_t pos = count;
  while (pos > 0 && (dist < wd[pos - 1] ||
                     (dist == wd[pos - 1] && train_index < wi[pos - 1]))) {
    --pos;
  }
  if (pos >= k_) return;  // Equal-distance, larger-index: not admitted.
  const size_t new_count = std::min(count + 1, k_);
  uint32_t* class_counts = class_counts_ + e * static_cast<size_t>(num_classes_);
  if (count == k_) {
    // Window full: the (distance, index)-largest entry falls out.
    --class_counts[static_cast<size_t>(context_->label(wi[k_ - 1]))];
  }
  for (size_t j = new_count; j-- > pos + 1;) {
    wd[j] = wd[j - 1];
    wi[j] = wi[j - 1];
  }
  wd[pos] = dist;
  wi[pos] = train_index;
  counts_[e] = static_cast<uint32_t>(new_count);
  if (new_count == k_) cutoff_[e] = wd[k_ - 1];
  ++class_counts[static_cast<size_t>(context_->label(train_index))];
  // Re-arg-max the counts — same strict `>` keeping the smaller class id as
  // the reference kernel and the cold PredictProba argmax.
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (class_counts[static_cast<size_t>(c)] >
        class_counts[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  predictions_[e] = best;
}

}  // namespace

std::shared_ptr<const CoalitionScorerContext>
KnnClassifier::NewCoalitionScorerContext(
    const MlDataset& train, const Matrix& eval_features, int num_classes,
    const CoalitionScorerOptions& options) const {
  if (train.size() == 0 || eval_features.rows() == 0) return nullptr;
  if (num_classes < train.NumClasses()) num_classes = train.NumClasses();
  num_classes = std::max(num_classes, 1);
  if (options.float32) {
    return std::make_shared<KnnSoaContext<float>>(train, eval_features, k_,
                                                  num_classes);
  }
  if (options.soa_kernels) {
    return std::make_shared<KnnSoaContext<double>>(train, eval_features, k_,
                                                   num_classes);
  }
  return std::make_shared<KnnCoalitionContext>(train, eval_features, k_,
                                               num_classes);
}

std::unique_ptr<Classifier> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(k_);
}

std::string KnnClassifier::name() const {
  return StrFormat("knn(k=%zu)", k_);
}

}  // namespace nde
