#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "ml/logistic_regression.h"  // SoftmaxRowsInPlace

namespace nde {

namespace {
constexpr double kLogTwoPi = 1.8378770664093454835606594728112;
}  // namespace

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  NDE_CHECK_GE(var_smoothing, 0.0);
}

Status GaussianNaiveBayes::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status GaussianNaiveBayes::FitWithClasses(const MlDataset& data,
                                          int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit naive Bayes on empty data");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  num_classes_ = std::max(num_classes, 1);
  size_t n = data.size();
  size_t d = data.features.cols();

  means_ = Matrix(static_cast<size_t>(num_classes_), d);
  variances_ = Matrix(static_cast<size_t>(num_classes_), d);
  std::vector<size_t> counts(static_cast<size_t>(num_classes_), 0);

  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(data.labels[i]);
    ++counts[c];
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) means_(c, j) += row[j];
  }
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    if (counts[c] == 0) continue;
    for (size_t j = 0; j < d; ++j) {
      means_(c, j) /= static_cast<double>(counts[c]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(data.labels[i]);
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      double diff = row[j] - means_(c, j);
      variances_(c, j) += diff * diff;
    }
  }
  // Global per-feature statistics: the fallback distribution for classes
  // absent from the training subset (a tiny prior times the global density,
  // instead of a degenerate spike at zero).
  std::vector<double> global_mean(d, 0.0);
  std::vector<double> global_var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) global_mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) global_mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      double diff = row[j] - global_mean[j];
      global_var[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) global_var[j] /= static_cast<double>(n);

  double max_feature_var = 0.0;
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    for (size_t j = 0; j < d; ++j) {
      if (counts[c] > 0) {
        variances_(c, j) /= static_cast<double>(counts[c]);
      } else {
        means_(c, j) = global_mean[j];
        variances_(c, j) = global_var[j];
      }
      max_feature_var = std::max(max_feature_var, variances_(c, j));
    }
  }
  double floor = var_smoothing_ * std::max(max_feature_var, 1.0) + 1e-12;
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    for (size_t j = 0; j < d; ++j) variances_(c, j) += floor;
  }

  log_priors_.assign(static_cast<size_t>(num_classes_), 0.0);
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    // Laplace-smoothed priors: classes absent from a subset get small but
    // non-zero prior instead of -inf.
    double prior = (static_cast<double>(counts[c]) + 1.0) /
                   (static_cast<double>(n) + num_classes_);
    log_priors_[c] = std::log(prior);
  }
  fitted_ = true;
  return Status::OK();
}

Matrix GaussianNaiveBayes::LogJoint(const Matrix& features) const {
  NDE_CHECK(fitted_);
  NDE_CHECK_EQ(features.cols(), means_.cols());
  size_t d = features.cols();
  Matrix log_joint(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
      double acc = log_priors_[c];
      for (size_t j = 0; j < d; ++j) {
        double var = variances_(c, j);
        double diff = row[j] - means_(c, j);
        acc -= 0.5 * (kLogTwoPi + std::log(var) + diff * diff / var);
      }
      log_joint(r, c) = acc;
    }
  }
  return log_joint;
}

std::vector<int> GaussianNaiveBayes::Predict(const Matrix& features) const {
  Matrix log_joint = LogJoint(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (log_joint(r, static_cast<size_t>(c)) >
          log_joint(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix GaussianNaiveBayes::PredictProba(const Matrix& features) const {
  Matrix log_joint = LogJoint(features);
  SoftmaxRowsInPlace(&log_joint);
  return log_joint;
}

std::unique_ptr<Classifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(var_smoothing_);
}

// ---------------------------------------------------------------------------
// Incremental coalition scorer.
//
// Exactness argument (the cold fit sees the coalition sorted ascending, per
// the UtilityFunction subset convention): every per-(class, feature) sum in
// the cold two-pass fit accumulates the class's member rows in ascending
// parent-index order. The scorer keeps member lists sorted, so recomputing
// the pushed class's mean/variance passes over its sorted list replays the
// identical floating-point chain; untouched classes keep their previous —
// likewise identical — values. Global fallback statistics are maintained the
// same way, and only while some class is absent: once every class has a
// member the cold fit still computes them but never reads them, so skipping
// them is value-identical. max_feature_var is a max over a fixed set
// (order-independent), and the floor, priors and LogJoint expressions are
// replicated operation for operation. This is deliberately NOT a
// Welford-style running update, which would change bits.
//
// Cost per Push: O(|class| * d) moment recompute plus O(m * C * d) scoring,
// versus the cold path's O(n * d) fit, O(n * d) coalition copy and a model
// allocation per prefix.
// ---------------------------------------------------------------------------

namespace {

/// Shifts the sorted prefix [0, count) up by one slot and inserts `value`.
void InsertSorted(uint32_t* arr, size_t count, uint32_t value) {
  size_t pos = count;
  while (pos > 0 && arr[pos - 1] > value) {
    arr[pos] = arr[pos - 1];
    --pos;
  }
  arr[pos] = value;
}

class NbCoalitionContext;

class NbCoalitionScorer final : public CoalitionScorer {
 public:
  NbCoalitionScorer(const NbCoalitionContext* context, Arena* arena);

  void Add(size_t train_index) override;
  const std::vector<int>& Predict() override;

 private:
  void RefreshDerived();

  const NbCoalitionContext* context_;
  size_t d_;
  int num_classes_;
  size_t capacity_;  ///< Training-set size; bounds every member list.
  // Flat buffers carved from one block (arena or owned_), doubles first:
  double* means_;           ///< C x d, valid rows only where counts_ > 0.
  double* vars_;            ///< C x d, unfloored.
  double* global_mean_;     ///< d, maintained only while a class is absent.
  double* global_var_;      ///< d, unfloored.
  double* log_priors_;      ///< C.
  double* var_cache_;       ///< C x d, floored (absent classes resolved).
  double* log_var_cache_;   ///< C x d, log of var_cache_.
  double* mean_cache_;      ///< C x d, absent classes resolved.
  uint32_t* members_;       ///< Sorted coalition, num_members_ entries.
  uint32_t* class_members_; ///< C x capacity, sorted per class.
  uint32_t* counts_;        ///< C.
  size_t num_members_ = 0;
  int present_classes_ = 0;
  bool derived_dirty_ = false;
  std::vector<int> predictions_;
  std::vector<char> owned_;  ///< Backing block when no arena is given.
};

class NbCoalitionContext final : public CoalitionScorerContext {
 public:
  NbCoalitionContext(const MlDataset& train, const Matrix& eval_features,
                     int num_classes, double var_smoothing)
      : train_features_(&train.features),
        eval_features_(&eval_features),
        labels_(train.labels),
        num_classes_(num_classes),
        var_smoothing_(var_smoothing) {
    NDE_CHECK_LT(train.size(), std::numeric_limits<uint32_t>::max());
    NDE_CHECK_EQ(train.features.cols(), eval_features.cols());
  }

  std::unique_ptr<CoalitionScorer> NewScorer(Arena* arena) const override {
    return std::make_unique<NbCoalitionScorer>(this, arena);
  }

  const Matrix& train_features() const { return *train_features_; }
  const Matrix& eval_features() const { return *eval_features_; }
  int label(size_t i) const { return labels_[i]; }
  size_t train_size() const { return labels_.size(); }
  int num_classes() const { return num_classes_; }
  double var_smoothing() const { return var_smoothing_; }

 private:
  const Matrix* train_features_;  ///< Borrowed; caller keeps it alive.
  const Matrix* eval_features_;   ///< Borrowed; caller keeps it alive.
  std::vector<int> labels_;
  int num_classes_;
  double var_smoothing_;
};

NbCoalitionScorer::NbCoalitionScorer(const NbCoalitionContext* context,
                                     Arena* arena)
    : context_(context),
      d_(context->train_features().cols()),
      num_classes_(context->num_classes()),
      capacity_(context->train_size()),
      predictions_(context->eval_features().rows(), 0) {
  const size_t classes = static_cast<size_t>(num_classes_);
  const size_t stats = classes * d_;
  const size_t doubles = 5 * stats + 2 * d_ + classes;
  const size_t uints = capacity_ + classes * capacity_ + classes;
  const size_t total = doubles * sizeof(double) + uints * sizeof(uint32_t);
  char* block;
  if (arena != nullptr) {
    block = static_cast<char*>(arena->Allocate(total, alignof(double)));
  } else {
    owned_.resize(total);
    block = owned_.data();
  }
  double* dbl = reinterpret_cast<double*>(block);
  means_ = dbl;
  vars_ = means_ + stats;
  global_mean_ = vars_ + stats;
  global_var_ = global_mean_ + d_;
  log_priors_ = global_var_ + d_;
  var_cache_ = log_priors_ + classes;
  log_var_cache_ = var_cache_ + stats;
  mean_cache_ = log_var_cache_ + stats;
  uint32_t* u32 = reinterpret_cast<uint32_t*>(mean_cache_ + stats);
  members_ = u32;
  class_members_ = members_ + capacity_;
  counts_ = class_members_ + classes * capacity_;
  std::fill(counts_, counts_ + classes, uint32_t{0});
}

void NbCoalitionScorer::Add(size_t train_index) {
  const uint32_t index32 = static_cast<uint32_t>(train_index);
  const size_t c = static_cast<size_t>(context_->label(train_index));
  InsertSorted(members_, num_members_, index32);
  ++num_members_;
  InsertSorted(class_members_ + c * capacity_, counts_[c], index32);
  if (++counts_[c] == 1) ++present_classes_;

  // Recompute the pushed class's moments over its sorted member list: the
  // same two passes, in the same order, as the cold fit restricted to this
  // class.
  const Matrix& train = context_->train_features();
  const uint32_t* members = class_members_ + c * capacity_;
  const size_t count = counts_[c];
  double* mean = means_ + c * d_;
  double* var = vars_ + c * d_;
  std::fill(mean, mean + d_, 0.0);
  std::fill(var, var + d_, 0.0);
  for (size_t k = 0; k < count; ++k) {
    const double* row = train.RowPtr(members[k]);
    for (size_t j = 0; j < d_; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < d_; ++j) mean[j] /= static_cast<double>(count);
  for (size_t k = 0; k < count; ++k) {
    const double* row = train.RowPtr(members[k]);
    for (size_t j = 0; j < d_; ++j) {
      double diff = row[j] - mean[j];
      var[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d_; ++j) var[j] /= static_cast<double>(count);

  // Global fallback moments: only read by the cold fit while some class is
  // absent, so they are only maintained while some class is absent.
  if (present_classes_ < num_classes_) {
    std::fill(global_mean_, global_mean_ + d_, 0.0);
    std::fill(global_var_, global_var_ + d_, 0.0);
    for (size_t k = 0; k < num_members_; ++k) {
      const double* row = train.RowPtr(members_[k]);
      for (size_t j = 0; j < d_; ++j) global_mean_[j] += row[j];
    }
    for (size_t j = 0; j < d_; ++j) {
      global_mean_[j] /= static_cast<double>(num_members_);
    }
    for (size_t k = 0; k < num_members_; ++k) {
      const double* row = train.RowPtr(members_[k]);
      for (size_t j = 0; j < d_; ++j) {
        double diff = row[j] - global_mean_[j];
        global_var_[j] += diff * diff;
      }
    }
    for (size_t j = 0; j < d_; ++j) {
      global_var_[j] /= static_cast<double>(num_members_);
    }
  }
  derived_dirty_ = true;
}

void NbCoalitionScorer::RefreshDerived() {
  const size_t classes = static_cast<size_t>(num_classes_);
  // max over a fixed set of variances: order-independent, so one flat pass
  // yields the cold fit's value.
  double max_feature_var = 0.0;
  for (size_t c = 0; c < classes; ++c) {
    const double* var = counts_[c] > 0 ? vars_ + c * d_ : global_var_;
    for (size_t j = 0; j < d_; ++j) {
      max_feature_var = std::max(max_feature_var, var[j]);
    }
  }
  const double floor =
      context_->var_smoothing() * std::max(max_feature_var, 1.0) + 1e-12;
  // Floored variances and their logs, one per (class, feature) per Push
  // instead of one per (eval row, class, feature): the cached doubles are
  // the exact values the cold LogJoint computes inline.
  for (size_t c = 0; c < classes; ++c) {
    const bool present = counts_[c] > 0;
    const double* var = present ? vars_ + c * d_ : global_var_;
    const double* mean = present ? means_ + c * d_ : global_mean_;
    for (size_t j = 0; j < d_; ++j) {
      const double floored = var[j] + floor;
      var_cache_[c * d_ + j] = floored;
      log_var_cache_[c * d_ + j] = std::log(floored);
      mean_cache_[c * d_ + j] = mean[j];
    }
  }
  for (size_t c = 0; c < classes; ++c) {
    double prior = (static_cast<double>(counts_[c]) + 1.0) /
                   (static_cast<double>(num_members_) + num_classes_);
    log_priors_[c] = std::log(prior);
  }
  derived_dirty_ = false;
}

const std::vector<int>& NbCoalitionScorer::Predict() {
  NDE_CHECK_GT(num_members_, 0u);
  if (derived_dirty_) RefreshDerived();
  const Matrix& eval = context_->eval_features();
  const size_t m = eval.rows();
  const size_t classes = static_cast<size_t>(num_classes_);
  for (size_t r = 0; r < m; ++r) {
    const double* row = eval.RowPtr(r);
    int best = 0;
    double best_acc = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      // The cold LogJoint chain, operation for operation.
      double acc = log_priors_[c];
      const double* mean = mean_cache_ + c * d_;
      const double* var = var_cache_ + c * d_;
      const double* log_var = log_var_cache_ + c * d_;
      for (size_t j = 0; j < d_; ++j) {
        double diff = row[j] - mean[j];
        acc -= 0.5 * (kLogTwoPi + log_var[j] + diff * diff / var[j]);
      }
      if (c == 0 || acc > best_acc) {
        best = static_cast<int>(c);
        best_acc = acc;
      }
    }
    predictions_[r] = best;
  }
  return predictions_;
}

}  // namespace

std::shared_ptr<const CoalitionScorerContext>
GaussianNaiveBayes::NewCoalitionScorerContext(
    const MlDataset& train, const Matrix& eval_features, int num_classes,
    const CoalitionScorerOptions& options) const {
  (void)options;  // One exact kernel; float32 does not apply to NB.
  if (train.size() == 0 || eval_features.rows() == 0) return nullptr;
  if (num_classes < train.NumClasses()) num_classes = train.NumClasses();
  return std::make_shared<NbCoalitionContext>(
      train, eval_features, std::max(num_classes, 1), var_smoothing_);
}

}  // namespace nde
