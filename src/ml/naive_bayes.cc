#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic_regression.h"  // SoftmaxRowsInPlace

namespace nde {

namespace {
constexpr double kLogTwoPi = 1.8378770664093454835606594728112;
}  // namespace

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  NDE_CHECK_GE(var_smoothing, 0.0);
}

Status GaussianNaiveBayes::Fit(const MlDataset& data) {
  return FitWithClasses(data, data.NumClasses());
}

Status GaussianNaiveBayes::FitWithClasses(const MlDataset& data,
                                          int num_classes) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot fit naive Bayes on empty data");
  }
  if (num_classes < data.NumClasses()) {
    return Status::InvalidArgument("num_classes below max label");
  }
  num_classes_ = std::max(num_classes, 1);
  size_t n = data.size();
  size_t d = data.features.cols();

  means_ = Matrix(static_cast<size_t>(num_classes_), d);
  variances_ = Matrix(static_cast<size_t>(num_classes_), d);
  std::vector<size_t> counts(static_cast<size_t>(num_classes_), 0);

  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(data.labels[i]);
    ++counts[c];
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) means_(c, j) += row[j];
  }
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    if (counts[c] == 0) continue;
    for (size_t j = 0; j < d; ++j) {
      means_(c, j) /= static_cast<double>(counts[c]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(data.labels[i]);
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      double diff = row[j] - means_(c, j);
      variances_(c, j) += diff * diff;
    }
  }
  // Global per-feature statistics: the fallback distribution for classes
  // absent from the training subset (a tiny prior times the global density,
  // instead of a degenerate spike at zero).
  std::vector<double> global_mean(d, 0.0);
  std::vector<double> global_var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) global_mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) global_mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.features.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      double diff = row[j] - global_mean[j];
      global_var[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) global_var[j] /= static_cast<double>(n);

  double max_feature_var = 0.0;
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    for (size_t j = 0; j < d; ++j) {
      if (counts[c] > 0) {
        variances_(c, j) /= static_cast<double>(counts[c]);
      } else {
        means_(c, j) = global_mean[j];
        variances_(c, j) = global_var[j];
      }
      max_feature_var = std::max(max_feature_var, variances_(c, j));
    }
  }
  double floor = var_smoothing_ * std::max(max_feature_var, 1.0) + 1e-12;
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    for (size_t j = 0; j < d; ++j) variances_(c, j) += floor;
  }

  log_priors_.assign(static_cast<size_t>(num_classes_), 0.0);
  for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
    // Laplace-smoothed priors: classes absent from a subset get small but
    // non-zero prior instead of -inf.
    double prior = (static_cast<double>(counts[c]) + 1.0) /
                   (static_cast<double>(n) + num_classes_);
    log_priors_[c] = std::log(prior);
  }
  fitted_ = true;
  return Status::OK();
}

Matrix GaussianNaiveBayes::LogJoint(const Matrix& features) const {
  NDE_CHECK(fitted_);
  NDE_CHECK_EQ(features.cols(), means_.cols());
  size_t d = features.cols();
  Matrix log_joint(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
      double acc = log_priors_[c];
      for (size_t j = 0; j < d; ++j) {
        double var = variances_(c, j);
        double diff = row[j] - means_(c, j);
        acc -= 0.5 * (kLogTwoPi + std::log(var) + diff * diff / var);
      }
      log_joint(r, c) = acc;
    }
  }
  return log_joint;
}

std::vector<int> GaussianNaiveBayes::Predict(const Matrix& features) const {
  Matrix log_joint = LogJoint(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (log_joint(r, static_cast<size_t>(c)) >
          log_joint(r, static_cast<size_t>(best))) {
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Matrix GaussianNaiveBayes::PredictProba(const Matrix& features) const {
  Matrix log_joint = LogJoint(features);
  SoftmaxRowsInPlace(&log_joint);
  return log_joint;
}

std::unique_ptr<Classifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(var_smoothing_);
}

}  // namespace nde
