#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace nde {

namespace {

/// Per-group binary confusion matrices.
std::map<int, BinaryConfusion> GroupConfusions(
    const std::vector<int>& actual, const std::vector<int>& predicted,
    const std::vector<int>& groups) {
  NDE_CHECK_EQ(actual.size(), predicted.size());
  NDE_CHECK_EQ(actual.size(), groups.size());
  std::map<int, BinaryConfusion> out;
  for (size_t i = 0; i < actual.size(); ++i) {
    BinaryConfusion& c = out[groups[i]];
    bool actual_pos = actual[i] == 1;
    bool pred_pos = predicted[i] == 1;
    if (actual_pos && pred_pos) ++c.true_positives;
    if (!actual_pos && pred_pos) ++c.false_positives;
    if (!actual_pos && !pred_pos) ++c.true_negatives;
    if (actual_pos && !pred_pos) ++c.false_negatives;
  }
  return out;
}

double MaxPairwiseGap(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo;
}

}  // namespace

double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted) {
  NDE_CHECK_EQ(actual.size(), predicted.size());
  if (actual.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(actual.size());
}

double BinaryConfusion::Precision() const {
  size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryConfusion::Recall() const {
  size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryConfusion::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryConfusion::FalsePositiveRate() const {
  size_t denom = false_positives + true_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

BinaryConfusion ComputeBinaryConfusion(const std::vector<int>& actual,
                                       const std::vector<int>& predicted,
                                       int positive_label) {
  NDE_CHECK_EQ(actual.size(), predicted.size());
  BinaryConfusion c;
  for (size_t i = 0; i < actual.size(); ++i) {
    bool actual_pos = actual[i] == positive_label;
    bool pred_pos = predicted[i] == positive_label;
    if (actual_pos && pred_pos) ++c.true_positives;
    if (!actual_pos && pred_pos) ++c.false_positives;
    if (!actual_pos && !pred_pos) ++c.true_negatives;
    if (actual_pos && !pred_pos) ++c.false_negatives;
  }
  return c;
}

double F1Score(const std::vector<int>& actual,
               const std::vector<int>& predicted) {
  return ComputeBinaryConfusion(actual, predicted, 1).F1();
}

double MacroF1Score(const std::vector<int>& actual,
                    const std::vector<int>& predicted, int num_classes) {
  if (num_classes <= 0) return 0.0;
  double total = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    total += ComputeBinaryConfusion(actual, predicted, c).F1();
  }
  return total / static_cast<double>(num_classes);
}

double LogLoss(const Matrix& probabilities, const std::vector<int>& actual) {
  NDE_CHECK_EQ(probabilities.rows(), actual.size());
  if (actual.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    NDE_CHECK_GE(actual[i], 0);
    NDE_CHECK_LT(static_cast<size_t>(actual[i]), probabilities.cols());
    double p = std::max(probabilities(i, static_cast<size_t>(actual[i])),
                        1e-12);
    total -= std::log(p);
  }
  return total / static_cast<double>(actual.size());
}

double DemographicParityDifference(const std::vector<int>& predicted,
                                   const std::vector<int>& groups) {
  NDE_CHECK_EQ(predicted.size(), groups.size());
  std::map<int, std::pair<size_t, size_t>> counts;  // group -> (positives, n)
  for (size_t i = 0; i < predicted.size(); ++i) {
    auto& entry = counts[groups[i]];
    if (predicted[i] == 1) ++entry.first;
    ++entry.second;
  }
  std::vector<double> rates;
  for (const auto& [group, entry] : counts) {
    (void)group;
    rates.push_back(static_cast<double>(entry.first) /
                    static_cast<double>(entry.second));
  }
  return MaxPairwiseGap(rates);
}

double EqualizedOddsDifference(const std::vector<int>& actual,
                               const std::vector<int>& predicted,
                               const std::vector<int>& groups) {
  auto confusions = GroupConfusions(actual, predicted, groups);
  std::vector<double> tprs;
  std::vector<double> fprs;
  for (const auto& [group, c] : confusions) {
    (void)group;
    tprs.push_back(c.TruePositiveRate());
    fprs.push_back(c.FalsePositiveRate());
  }
  return std::max(MaxPairwiseGap(tprs), MaxPairwiseGap(fprs));
}

double PredictiveParityDifference(const std::vector<int>& actual,
                                  const std::vector<int>& predicted,
                                  const std::vector<int>& groups) {
  auto confusions = GroupConfusions(actual, predicted, groups);
  std::vector<double> precisions;
  for (const auto& [group, c] : confusions) {
    (void)group;
    precisions.push_back(c.Precision());
  }
  return MaxPairwiseGap(precisions);
}

double MeanPredictionEntropy(const Matrix& probabilities) {
  if (probabilities.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t r = 0; r < probabilities.rows(); ++r) {
    double entropy = 0.0;
    for (size_t c = 0; c < probabilities.cols(); ++c) {
      double p = probabilities(r, c);
      if (p > 1e-12) entropy -= p * std::log(p);
    }
    total += entropy;
  }
  return total / static_cast<double>(probabilities.rows());
}

Result<QualityReport> TrainAndEvaluate(const ClassifierFactory& factory,
                                       const MlDataset& train,
                                       const MlDataset& test,
                                       const std::vector<int>& test_groups) {
  if (!test_groups.empty() && test_groups.size() != test.size()) {
    return Status::InvalidArgument(
        StrFormat("group count %zu != test rows %zu", test_groups.size(),
                  test.size()));
  }
  std::unique_ptr<Classifier> model = factory();
  int num_classes = std::max(train.NumClasses(), test.NumClasses());
  NDE_RETURN_IF_ERROR(model->FitWithClasses(train, num_classes));
  std::vector<int> predicted = model->Predict(test.features);
  Matrix proba = model->PredictProba(test.features);

  QualityReport report;
  report.accuracy = Accuracy(test.labels, predicted);
  report.f1 = num_classes <= 2
                  ? F1Score(test.labels, predicted)
                  : MacroF1Score(test.labels, predicted, num_classes);
  report.log_loss = LogLoss(proba, test.labels);
  report.prediction_entropy = MeanPredictionEntropy(proba);
  if (!test_groups.empty()) {
    report.equalized_odds =
        EqualizedOddsDifference(test.labels, predicted, test_groups);
    report.predictive_parity =
        PredictiveParityDifference(test.labels, predicted, test_groups);
  }
  return report;
}

Result<double> TrainAndScore(const ClassifierFactory& factory,
                             const MlDataset& train, const MlDataset& test) {
  NDE_ASSIGN_OR_RETURN(QualityReport report,
                       TrainAndEvaluate(factory, train, test));
  return report.accuracy;
}

}  // namespace nde
