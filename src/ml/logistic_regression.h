#ifndef NDE_ML_LOGISTIC_REGRESSION_H_
#define NDE_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace nde {

/// Configuration for (multinomial) logistic regression training.
struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  size_t epochs = 200;
  double l2 = 1e-3;           ///< L2 regularization strength (per-example).
  bool standardize = true;    ///< z-score features before training.
  /// Gradient-descent epochs for FitIncremental when warm-starting from the
  /// previous weights. The warm start amortizes most of the full budget, so a
  /// small fraction of `epochs` suffices in practice.
  size_t warm_start_epochs = 20;
};

/// Multinomial (softmax) logistic regression trained by full-batch gradient
/// descent. Deterministic: no random initialization (weights start at zero).
///
/// Handles the binary case as a 2-class softmax. Exposes the learned weights
/// so influence-function and fairness-debugging code can differentiate
/// through the model.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  Status Fit(const MlDataset& data) override;
  Status FitWithClasses(const MlDataset& data, int num_classes) override;

  /// Zero-copy fit: standardizes straight off the parent rows into the
  /// training buffer (one materialization instead of two). Learned weights
  /// are bit-identical to FitWithClasses(view.Materialize(), num_classes);
  /// nothing is borrowed after returning.
  Status FitView(const MlDatasetView& view, int num_classes) override;

  /// Warm start: when already fitted with matching shape, keeps the current
  /// weights *and* scaler (warm weights live in the old standardized space)
  /// and runs options.warm_start_epochs of gradient descent on `data`.
  /// Approximate — results differ from a cold fit; falls back to an exact
  /// FitWithClasses when unfitted or when the feature/class shape changed.
  Status FitIncremental(const MlDataset& data, int num_classes) override;

  std::vector<int> Predict(const Matrix& features) const override;
  Matrix PredictProba(const Matrix& features) const override;
  int num_classes() const override { return num_classes_; }
  std::unique_ptr<Classifier> Clone() const override;
  std::string name() const override { return "logreg"; }

  /// Learned weights, num_classes x (d + 1); the last column is the bias.
  /// Weights are in *standardized* feature space when options.standardize.
  const Matrix& weights() const { return weights_; }

  /// Mean negative log-likelihood of `data` under the fitted model.
  double LogLoss(const MlDataset& data) const;

  const LogisticRegressionOptions& options() const { return options_; }

 private:
  Matrix Logits(const Matrix& features) const;

  /// Full-batch gradient descent on pre-standardized features, continuing
  /// from the current weights_.
  void RunEpochs(const Matrix& x, const std::vector<int>& labels,
                 size_t epochs);

  LogisticRegressionOptions options_;
  Matrix weights_;  // num_classes x (d+1)
  FeatureScaler scaler_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

/// Numerically stable softmax of each row of `logits`, in place.
void SoftmaxRowsInPlace(Matrix* logits);

}  // namespace nde

#endif  // NDE_ML_LOGISTIC_REGRESSION_H_
