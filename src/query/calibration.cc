#include "query/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nde {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status PlattCalibrator::Fit(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty calibration data");
  }
  size_t positives = 0;
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be binary {0, 1}");
    }
    if (label == 1) ++positives;
  }
  if (positives == 0 || positives == labels.size()) {
    return Status::FailedPrecondition("calibration needs both classes");
  }

  // Newton's method on the 2-parameter logistic log-loss, with Platt's
  // label smoothing to avoid saturated targets.
  double n = static_cast<double>(labels.size());
  double n_pos = static_cast<double>(positives);
  double t_pos = (n_pos + 1.0) / (n_pos + 2.0);
  double t_neg = 1.0 / ((n - n_pos) + 2.0);

  double a = 1.0;
  double b = 0.0;
  for (int iteration = 0; iteration < 50; ++iteration) {
    double g_a = 0.0, g_b = 0.0;
    double h_aa = 1e-9, h_ab = 0.0, h_bb = 1e-9;
    for (size_t i = 0; i < scores.size(); ++i) {
      double target = labels[i] == 1 ? t_pos : t_neg;
      double p = Sigmoid(a * scores[i] + b);
      double err = p - target;
      double w = std::max(p * (1.0 - p), 1e-9);
      g_a += err * scores[i];
      g_b += err;
      h_aa += w * scores[i] * scores[i];
      h_ab += w * scores[i];
      h_bb += w;
    }
    // Solve the 2x2 Newton system.
    double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-18) break;
    double step_a = (g_a * h_bb - g_b * h_ab) / det;
    double step_b = (g_b * h_aa - g_a * h_ab) / det;
    a -= step_a;
    b -= step_b;
    if (step_a * step_a + step_b * step_b < 1e-18) break;
  }
  a_ = a;
  b_ = b;
  fitted_ = true;
  return Status::OK();
}

double PlattCalibrator::Calibrate(double score) const {
  NDE_CHECK(fitted_) << "calibrator is not fitted";
  return Sigmoid(a_ * score + b_);
}

std::vector<double> PlattCalibrator::Calibrate(
    const std::vector<double>& scores) const {
  std::vector<double> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out[i] = Calibrate(scores[i]);
  return out;
}

double BrierScore(const std::vector<double>& probabilities,
                  const std::vector<int>& labels) {
  NDE_CHECK_EQ(probabilities.size(), labels.size());
  if (probabilities.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    double diff = probabilities[i] - static_cast<double>(labels[i]);
    total += diff * diff;
  }
  return total / static_cast<double>(probabilities.size());
}

double ExpectedCalibrationError(const std::vector<double>& probabilities,
                                const std::vector<int>& labels,
                                size_t num_bins) {
  NDE_CHECK_EQ(probabilities.size(), labels.size());
  NDE_CHECK_GE(num_bins, 1u);
  if (probabilities.empty()) return 0.0;
  std::vector<double> confidence(num_bins, 0.0);
  std::vector<double> accuracy(num_bins, 0.0);
  std::vector<size_t> counts(num_bins, 0);
  for (size_t i = 0; i < probabilities.size(); ++i) {
    double p = std::clamp(probabilities[i], 0.0, 1.0);
    size_t bin = std::min(static_cast<size_t>(p * num_bins), num_bins - 1);
    confidence[bin] += p;
    accuracy[bin] += static_cast<double>(labels[i]);
    ++counts[bin];
  }
  double ece = 0.0;
  double n = static_cast<double>(probabilities.size());
  for (size_t bin = 0; bin < num_bins; ++bin) {
    if (counts[bin] == 0) continue;
    double c = confidence[bin] / static_cast<double>(counts[bin]);
    double a = accuracy[bin] / static_cast<double>(counts[bin]);
    ece += (static_cast<double>(counts[bin]) / n) * std::fabs(c - a);
  }
  return ece;
}

}  // namespace nde
