#include "query/predictive_query.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"
#include "importance/knn_shapley.h"
#include "ml/knn.h"

namespace nde {

std::string LabelDictionary::Lookup(int label) const {
  if (label >= 0 && static_cast<size_t>(label) < names_.size()) {
    return names_[static_cast<size_t>(label)];
  }
  return StrFormat("class_%d", label);
}

std::string GroupAggregate::ToString() const {
  return StrFormat("group=%d count=%zu positive_rate=%.4f", group, count,
                   positive_rate);
}

Result<std::vector<GroupAggregate>> AggregatePositiveRate(
    const Classifier& model, const Matrix& query_features,
    const std::vector<int>& groups) {
  if (query_features.rows() != groups.size()) {
    return Status::InvalidArgument("query rows / groups size mismatch");
  }
  if (model.num_classes() < 2) {
    return Status::FailedPrecondition("model must have >= 2 classes");
  }
  Matrix proba = model.PredictProba(query_features);
  std::map<int, GroupAggregate> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    GroupAggregate& agg = by_group[groups[i]];
    agg.group = groups[i];
    agg.positive_rate += proba(i, 1);
    ++agg.count;
  }
  std::vector<GroupAggregate> out;
  out.reserve(by_group.size());
  for (auto& [group, agg] : by_group) {
    (void)group;
    agg.positive_rate /= static_cast<double>(agg.count);
    out.push_back(agg);
  }
  return out;
}

namespace {

/// Query rows belonging to `group`.
Result<std::vector<size_t>> GroupQueryRows(const Matrix& query_features,
                                           const std::vector<int>& groups,
                                           int group) {
  if (query_features.rows() != groups.size()) {
    return Status::InvalidArgument("query rows / groups size mismatch");
  }
  std::vector<size_t> rows;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == group) rows.push_back(i);
  }
  if (rows.empty()) {
    return Status::NotFound(StrFormat("no query rows in group %d", group));
  }
  return rows;
}

}  // namespace

Result<std::vector<double>> AggregateAttribution(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, int group, size_t k) {
  NDE_RETURN_IF_ERROR(train.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  NDE_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                       GroupQueryRows(query_features, groups, group));
  // The aggregate "mean soft-KNN P(class 1)" is the KNN-Shapley payoff with
  // every query's target label forced to 1, so the closed-form recurrence
  // attributes it exactly.
  MlDataset pseudo_validation;
  pseudo_validation.features = query_features.SelectRows(rows);
  pseudo_validation.labels.assign(rows.size(), 1);
  return KnnShapleyValues(train, pseudo_validation, k);
}

Result<std::vector<size_t>> ComplaintDrivenRanking(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, const Complaint& complaint, size_t k) {
  NDE_ASSIGN_OR_RETURN(
      std::vector<double> attribution,
      AggregateAttribution(train, query_features, groups, complaint.group, k));
  std::vector<size_t> order(attribution.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (complaint.direction == ComplaintDirection::kTooHigh) {
    // Remove the tuples pushing the aggregate *up* first.
    std::sort(order.begin(), order.end(), [&attribution](size_t a, size_t b) {
      if (attribution[a] != attribution[b]) {
        return attribution[a] > attribution[b];
      }
      return a < b;
    });
  } else {
    std::sort(order.begin(), order.end(), [&attribution](size_t a, size_t b) {
      if (attribution[a] != attribution[b]) {
        return attribution[a] < attribution[b];
      }
      return a < b;
    });
  }
  return order;
}

Result<ComplaintFixResult> ApplyComplaintFix(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, const Complaint& complaint, size_t k,
    size_t budget) {
  if (budget >= train.size()) {
    return Status::InvalidArgument("budget must leave training data behind");
  }
  NDE_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                       GroupQueryRows(query_features, groups, complaint.group));
  Matrix group_queries = query_features.SelectRows(rows);

  auto aggregate = [&](const MlDataset& data) -> Result<double> {
    KnnClassifier knn(k);
    NDE_RETURN_IF_ERROR(knn.FitWithClasses(data, std::max(train.NumClasses(), 2)));
    Matrix proba = knn.PredictProba(group_queries);
    double total = 0.0;
    for (size_t i = 0; i < proba.rows(); ++i) total += proba(i, 1);
    return total / static_cast<double>(proba.rows());
  };

  ComplaintFixResult result;
  NDE_ASSIGN_OR_RETURN(result.aggregate_before, aggregate(train));
  NDE_ASSIGN_OR_RETURN(
      std::vector<size_t> ranking,
      ComplaintDrivenRanking(train, query_features, groups, complaint, k));
  result.removed.assign(ranking.begin(),
                        ranking.begin() + static_cast<ptrdiff_t>(budget));
  MlDataset reduced = train.Without(result.removed);
  NDE_ASSIGN_OR_RETURN(result.aggregate_after, aggregate(reduced));
  return result;
}

}  // namespace nde
