#ifndef NDE_QUERY_PREDICTIVE_QUERY_H_
#define NDE_QUERY_PREDICTIVE_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace nde {

/// The downstream stage of Figure 1: trained models feed *predictive
/// queries* — per-group aggregates of predictions, rendered with a label
/// dictionary — and those query results are what users actually see and
/// complain about.

/// Maps class ids to human-readable labels ("dictionary lookup").
class LabelDictionary {
 public:
  LabelDictionary() = default;
  explicit LabelDictionary(std::vector<std::string> names)
      : names_(std::move(names)) {}

  /// Name of class `label`; falls back to "class_<id>" for unknown ids.
  std::string Lookup(int label) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

/// One row of an aggregate predictive-query result.
struct GroupAggregate {
  int group = 0;
  size_t count = 0;
  double positive_rate = 0.0;  ///< mean predicted P(class 1) over the group

  std::string ToString() const;
};

/// The canonical aggregate query: "mean predicted positive probability per
/// group" (e.g. predicted hiring rate per demographic, predicted default
/// rate per region). Uses the model's probability estimates.
Result<std::vector<GroupAggregate>> AggregatePositiveRate(
    const Classifier& model, const Matrix& query_features,
    const std::vector<int>& groups);

/// --- Complaint-driven training-data debugging (refs [20, 83]) --------------
///
/// A user complains that a query result is wrong ("the predicted positive
/// rate for group 3 is too high"). Complaint-driven debugging translates the
/// complaint into a ranking of *training* tuples whose removal moves the
/// aggregate in the requested direction.

enum class ComplaintDirection {
  kTooHigh,  ///< the aggregate should be lower
  kTooLow,   ///< the aggregate should be higher
};

struct Complaint {
  int group = 0;
  ComplaintDirection direction = ComplaintDirection::kTooHigh;
};

/// Exact per-tuple attribution of the aggregate for a K-NN model: the
/// Shapley value of each training tuple in the game
///   v(S) = mean over the complaint group's query points of the soft K-NN
///          predicted P(class 1) under training set S.
/// Computed with the closed-form KNN-Shapley recurrence (the aggregate is a
/// sum of per-query "votes for class 1", which is exactly the KNN-Shapley
/// payoff with every query label forced to 1). Satisfies efficiency:
/// the values sum to the full-data aggregate.
Result<std::vector<double>> AggregateAttribution(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, int group, size_t k);

/// Ranks training tuples for repair under `complaint`: tuples whose removal
/// most decreases (kTooHigh) or increases (kTooLow) the group aggregate come
/// first.
Result<std::vector<size_t>> ComplaintDrivenRanking(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, const Complaint& complaint, size_t k);

/// Outcome of applying a complaint fix.
struct ComplaintFixResult {
  double aggregate_before = 0.0;
  double aggregate_after = 0.0;
  std::vector<size_t> removed;  ///< training tuples removed, in rank order
};

/// Removes the top `budget` complaint-ranked tuples and re-evaluates the
/// group aggregate with a freshly fitted K-NN model.
Result<ComplaintFixResult> ApplyComplaintFix(
    const MlDataset& train, const Matrix& query_features,
    const std::vector<int>& groups, const Complaint& complaint, size_t k,
    size_t budget);

}  // namespace nde

#endif  // NDE_QUERY_PREDICTIVE_QUERY_H_
