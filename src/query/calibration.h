#ifndef NDE_QUERY_CALIBRATION_H_
#define NDE_QUERY_CALIBRATION_H_

#include <vector>

#include "common/result.h"

namespace nde {

/// Probability calibration for binary scores — the "calibration" half of
/// Figure 1's predictive-query-processing stage. Raw model scores (SVM
/// decision values, over-confident probability estimates) are mapped to
/// calibrated probabilities with Platt scaling: p = sigmoid(a * score + b),
/// with (a, b) fitted by Newton's method on held-out data.
class PlattCalibrator {
 public:
  PlattCalibrator() = default;

  /// Fits (a, b) on held-out scores and binary labels {0, 1} by minimizing
  /// log-loss. Returns InvalidArgument for size mismatch / non-binary labels
  /// and FailedPrecondition when the data is degenerate (one class only).
  Status Fit(const std::vector<double>& scores, const std::vector<int>& labels);

  /// Calibrated probability of the positive class. Precondition: fitted.
  double Calibrate(double score) const;
  std::vector<double> Calibrate(const std::vector<double>& scores) const;

  double slope() const { return a_; }
  double intercept() const { return b_; }
  bool fitted() const { return fitted_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

/// Brier score: mean squared error between probabilities and binary labels.
/// Lower is better; the standard calibration-quality metric.
double BrierScore(const std::vector<double>& probabilities,
                  const std::vector<int>& labels);

/// Expected calibration error with equal-width probability bins: the
/// weighted average gap between per-bin confidence and per-bin accuracy.
double ExpectedCalibrationError(const std::vector<double>& probabilities,
                                const std::vector<int>& labels,
                                size_t num_bins = 10);

}  // namespace nde

#endif  // NDE_QUERY_CALIBRATION_H_
