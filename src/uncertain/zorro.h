#ifndef NDE_UNCERTAIN_ZORRO_H_
#define NDE_UNCERTAIN_ZORRO_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "uncertain/interval.h"

namespace nde {

/// A regression dataset whose feature cells are intervals: each concrete
/// instantiation of the intervals is one "possible world" of the data. The
/// symbolic encoding of uncertainty/missingness used by the Zorro-style
/// trainer ("Learning from Uncertain Data: From Possible Worlds to Possible
/// Models", Zhu et al. 2024).
struct SymbolicRegressionDataset {
  std::vector<std::vector<Interval>> features;  ///< n rows of d intervals
  std::vector<double> targets;                  ///< exact targets

  size_t size() const { return targets.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Exact (point-interval) encoding of a concrete dataset.
  static SymbolicRegressionDataset FromConcrete(const RegressionDataset& data);

  /// Marks one cell as uncertain within [lo, hi].
  void SetUncertain(size_t row, size_t col, double lo, double hi);

  /// Draws one possible world uniformly (independently per uncertain cell).
  RegressionDataset SampleWorld(Rng* rng) const;

  /// Consistency check: rectangular, targets aligned.
  Status Validate() const;
};

/// Marks a fraction-style list of rows as missing in `column`, replacing the
/// cell with the interval [lo, hi] — the `nde.encode_symbolic` step of
/// Figure 4.
Result<SymbolicRegressionDataset> EncodeSymbolicMissing(
    const RegressionDataset& data, const std::vector<size_t>& missing_rows,
    size_t column, double lo, double hi);

/// Training configuration for the symbolic trainer. The interval trainer
/// runs full-batch gradient descent on the ridge-regularized squared loss
/// with every arithmetic operation lifted to intervals, so the resulting
/// weight intervals contain the weights GD would reach in *every* possible
/// world (same initialization, learning rate and epoch count).
struct ZorroOptions {
  double learning_rate = 0.05;
  size_t epochs = 60;
  double l2 = 1e-2;
};

/// A possible-models object: interval weights + interval bias.
struct ZorroModel {
  std::vector<Interval> weights;
  Interval bias;

  /// Prediction range for a concrete input.
  Interval Predict(const std::vector<double>& x) const;

  /// Prediction range for an uncertain input.
  Interval Predict(const std::vector<Interval>& x) const;

  /// Worst-case squared loss for one labeled example: hi((pred - y)^2).
  double WorstCaseSquaredLoss(const std::vector<double>& x, double y) const;

  /// Total interval width of the weights (uncertainty magnitude diagnostic).
  double TotalWeightWidth() const;
};

/// Trains the symbolic model. Interval widths grow with the amount of
/// injected uncertainty and with epochs; the default configuration is tuned
/// to converge on standardized features without exploding.
Result<ZorroModel> TrainZorro(const SymbolicRegressionDataset& data,
                              const ZorroOptions& options = {});

/// Reference implementation the symbolic trainer over-approximates: concrete
/// full-batch GD with identical hyperparameters. Exposed so tests and benches
/// can verify soundness (every sampled world's weights lie inside the
/// symbolic model's intervals).
std::vector<double> TrainConcreteGd(const RegressionDataset& data,
                                    const ZorroOptions& options);

/// The Figure 4 headline quantity: the maximum over test points of the
/// worst-case squared loss under the possible-models set.
double MaxWorstCaseLoss(const ZorroModel& model, const RegressionDataset& test);

/// Mean prediction-interval width over the test set (robustness diagnostic
/// shown in the hands-on session).
double MeanPredictionWidth(const ZorroModel& model, const Matrix& test_features);

}  // namespace nde

#endif  // NDE_UNCERTAIN_ZORRO_H_
