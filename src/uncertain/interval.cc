#include "uncertain/interval.h"

#include "common/string_util.h"

namespace nde {

std::string Interval::ToString() const {
  if (is_point()) return StrFormat("[%g]", lo_);
  return StrFormat("[%g, %g]", lo_, hi_);
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << interval.ToString();
}

Interval IntervalDot(const std::vector<Interval>& a,
                     const std::vector<Interval>& b) {
  NDE_CHECK_EQ(a.size(), b.size());
  Interval acc;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Interval IntervalDot(const std::vector<Interval>& a,
                     const std::vector<double>& b) {
  NDE_CHECK_EQ(a.size(), b.size());
  Interval acc;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * Interval(b[i]);
  return acc;
}

}  // namespace nde
