#ifndef NDE_UNCERTAIN_ZONOTOPE_TRAINER_H_
#define NDE_UNCERTAIN_ZONOTOPE_TRAINER_H_

#include <vector>

#include "common/result.h"
#include "uncertain/affine.h"
#include "uncertain/zorro.h"

namespace nde {

/// A possible-models object in the zonotope domain: every weight is an affine
/// form over the *shared* noise symbols of the uncertain input cells, so
/// correlations between weights and inputs are preserved end to end.
struct ZonotopeModel {
  std::vector<AffineForm> weights;
  AffineForm bias;
  /// symbol id of each uncertain cell: (row, col) -> symbol, as assigned by
  /// the trainer (used to evaluate predictions symbolically).
  std::vector<std::vector<uint32_t>> cell_symbols;  ///< kNoSymbol when exact
  static constexpr uint32_t kNoSymbol = 0xffffffffu;

  /// Prediction range for a concrete input (correlation-aware).
  Interval Predict(const std::vector<double>& x) const;

  /// Symbolic prediction for training row `row` of the dataset the model was
  /// trained on: the row's own uncertain cells reuse their original noise
  /// symbols, so weight/input correlations cancel exactly.
  Interval PredictTrainingRow(const SymbolicRegressionDataset& data,
                              size_t row) const;

  /// Worst-case squared loss for a concrete labeled example.
  double WorstCaseSquaredLoss(const std::vector<double>& x, double y) const;

  /// Interval hull of the weights (for comparison with the interval trainer).
  std::vector<Interval> WeightIntervals() const;

  double TotalWeightWidth() const;
};

/// Trains ridge regression by full-batch gradient descent with every
/// operation lifted to affine arithmetic — the zonotope-domain counterpart of
/// `TrainZorro`. Same hyperparameters concretize to the same concrete GD, so
/// the result soundly over-approximates `TrainConcreteGd` on every possible
/// world, but typically with far tighter bounds than the interval trainer
/// (dependency tracking lets opposing occurrences of the same uncertain cell
/// cancel).
Result<ZonotopeModel> TrainZorroZonotope(const SymbolicRegressionDataset& data,
                                         const ZorroOptions& options = {});

/// Figure 4 headline quantity in the zonotope domain.
double MaxWorstCaseLoss(const ZonotopeModel& model,
                        const RegressionDataset& test);

}  // namespace nde

#endif  // NDE_UNCERTAIN_ZONOTOPE_TRAINER_H_
