#include "uncertain/certain_knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nde {

UncertainClassificationDataset UncertainClassificationDataset::FromConcrete(
    const MlDataset& data) {
  UncertainClassificationDataset out;
  out.features.reserve(data.size());
  for (size_t i = 0; i < data.features.rows(); ++i) {
    std::vector<Interval> row;
    row.reserve(data.features.cols());
    for (size_t j = 0; j < data.features.cols(); ++j) {
      row.emplace_back(data.features(i, j));
    }
    out.features.push_back(std::move(row));
  }
  out.labels = data.labels;
  return out;
}

void UncertainClassificationDataset::SetUncertain(size_t row, size_t col,
                                                  double lo, double hi) {
  NDE_CHECK_LT(row, features.size());
  NDE_CHECK_LT(col, features[row].size());
  features[row][col] = Interval(lo, hi);
}

MlDataset UncertainClassificationDataset::SampleWorld(Rng* rng) const {
  NDE_CHECK(rng != nullptr);
  MlDataset world;
  world.features = Matrix(features.size(), num_features());
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t j = 0; j < features[i].size(); ++j) {
      const Interval& cell = features[i][j];
      world.features(i, j) =
          cell.is_point() ? cell.lo() : rng->NextUniform(cell.lo(), cell.hi());
    }
  }
  world.labels = labels;
  return world;
}

double UncertainClassificationDataset::MinSquaredDistance(
    size_t i, const std::vector<double>& query) const {
  NDE_CHECK_LT(i, features.size());
  NDE_CHECK_EQ(query.size(), features[i].size());
  double acc = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    const Interval& cell = features[i][j];
    double diff = 0.0;
    if (query[j] < cell.lo()) {
      diff = cell.lo() - query[j];
    } else if (query[j] > cell.hi()) {
      diff = query[j] - cell.hi();
    }  // else the cell can equal the query coordinate: contribution 0.
    acc += diff * diff;
  }
  return acc;
}

double UncertainClassificationDataset::MaxSquaredDistance(
    size_t i, const std::vector<double>& query) const {
  NDE_CHECK_LT(i, features.size());
  NDE_CHECK_EQ(query.size(), features[i].size());
  double acc = 0.0;
  for (size_t j = 0; j < query.size(); ++j) {
    const Interval& cell = features[i][j];
    double diff = std::max(std::fabs(query[j] - cell.lo()),
                           std::fabs(query[j] - cell.hi()));
    acc += diff * diff;
  }
  return acc;
}

namespace {

/// Deterministic K-NN majority vote given per-point distances: smallest
/// distances first (ties by index), then most votes (ties by class id).
int VoteWithDistances(const std::vector<double>& distances,
                      const std::vector<int>& labels, size_t k) {
  size_t n = distances.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  size_t take = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&distances](size_t a, size_t b) {
                      if (distances[a] != distances[b]) {
                        return distances[a] < distances[b];
                      }
                      return a < b;
                    });
  int max_label = 0;
  for (int label : labels) max_label = std::max(max_label, label);
  std::vector<size_t> votes(static_cast<size_t>(max_label) + 1, 0);
  for (size_t pos = 0; pos < take; ++pos) {
    ++votes[static_cast<size_t>(labels[order[pos]])];
  }
  int best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

}  // namespace

std::optional<int> CertainKnnPrediction(
    const UncertainClassificationDataset& train,
    const std::vector<double>& query, size_t k) {
  NDE_CHECK_GE(k, 1u);
  size_t n = train.size();
  NDE_CHECK_GT(n, 0u);

  std::vector<double> min_dist(n);
  std::vector<double> max_dist(n);
  for (size_t i = 0; i < n; ++i) {
    min_dist[i] = train.MinSquaredDistance(i, query);
    max_dist[i] = train.MaxSquaredDistance(i, query);
  }
  std::vector<int> classes;
  for (int label : train.labels) {
    if (std::find(classes.begin(), classes.end(), label) == classes.end()) {
      classes.push_back(label);
    }
  }
  std::sort(classes.begin(), classes.end());

  // Candidate: the prediction in the world most favorable to each class; the
  // certain label (if any) must be the winner of its own favorable world,
  // so iterate candidates and test them against all adversarial worlds.
  std::vector<double> distances(n);
  for (int candidate : classes) {
    // World favoring `candidate`: candidate points as close as possible,
    // everyone else as far as possible.
    for (size_t i = 0; i < n; ++i) {
      distances[i] =
          train.labels[i] == candidate ? min_dist[i] : max_dist[i];
    }
    if (VoteWithDistances(distances, train.labels, k) != candidate) {
      continue;  // Candidate cannot even win its best world.
    }
    // Adversarial worlds: each competitor class pulled fully toward the
    // query while everything else (candidate included) is pushed away.
    bool survives = true;
    for (int competitor : classes) {
      if (competitor == candidate) continue;
      for (size_t i = 0; i < n; ++i) {
        distances[i] =
            train.labels[i] == competitor ? min_dist[i] : max_dist[i];
      }
      if (VoteWithDistances(distances, train.labels, k) != candidate) {
        survives = false;
        break;
      }
    }
    if (survives) return candidate;
  }
  return std::nullopt;
}

double CertainPredictionRatio(const UncertainClassificationDataset& train,
                              const Matrix& queries, size_t k) {
  if (queries.rows() == 0) return 0.0;
  size_t certain = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    if (CertainKnnPrediction(train, queries.Row(q), k).has_value()) ++certain;
  }
  return static_cast<double>(certain) / static_cast<double>(queries.rows());
}

}  // namespace nde
