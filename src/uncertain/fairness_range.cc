#include "uncertain/fairness_range.h"

#include <algorithm>
#include <map>

namespace nde {

Interval PositiveRateRange(const std::vector<int>& group_predictions,
                           double max_weight_ratio) {
  NDE_CHECK_GE(max_weight_ratio, 1.0);
  if (group_predictions.empty()) return Interval(0.0, 0.0);
  double positives = 0.0;
  for (int pred : group_predictions) {
    if (pred == 1) positives += 1.0;
  }
  double p = positives / static_cast<double>(group_predictions.size());
  double r = max_weight_ratio;
  // Upper: weight every positive by r, every negative by 1; lower: reverse.
  // Both extremes are attained, so the range is exact.
  double hi = (r * p) / (r * p + (1.0 - p));
  double lo = p / (p + r * (1.0 - p));
  if (p == 0.0) return Interval(0.0, 0.0);
  if (p == 1.0) return Interval(1.0, 1.0);
  return Interval(lo, hi);
}

Result<Interval> DemographicParityRange(const std::vector<int>& predictions,
                                        const std::vector<int>& groups,
                                        double max_weight_ratio) {
  if (predictions.size() != groups.size()) {
    return Status::InvalidArgument("predictions/groups size mismatch");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("empty predictions");
  }
  if (max_weight_ratio < 1.0) {
    return Status::InvalidArgument("max_weight_ratio must be >= 1");
  }
  std::map<int, std::vector<int>> by_group;
  for (size_t i = 0; i < predictions.size(); ++i) {
    by_group[groups[i]].push_back(predictions[i]);
  }
  if (by_group.size() < 2) {
    return Interval(0.0, 0.0);
  }
  std::vector<Interval> ranges;
  ranges.reserve(by_group.size());
  for (const auto& [group, preds] : by_group) {
    (void)group;
    ranges.push_back(PositiveRateRange(preds, max_weight_ratio));
  }
  // Upper bound of the max pairwise gap: push one group up, another down.
  double max_gap = 0.0;
  double min_gap_possible = 0.0;
  for (size_t a = 0; a < ranges.size(); ++a) {
    for (size_t b = 0; b < ranges.size(); ++b) {
      if (a == b) continue;
      max_gap = std::max(max_gap, ranges[a].hi() - ranges[b].lo());
    }
  }
  // Lower bound: the gap that remains even in the most equalizing world.
  // Two groups can be equalized iff their rate ranges intersect; otherwise
  // the residual separation is forced. The minimum of the max-pairwise gap is
  // the smallest interval stabbing distance across groups.
  double lo_max = 0.0;
  double hi_min = 1.0;
  for (const Interval& range : ranges) {
    lo_max = std::max(lo_max, range.lo());
    hi_min = std::min(hi_min, range.hi());
  }
  min_gap_possible = std::max(0.0, lo_max - hi_min);
  max_gap = std::max(max_gap, 0.0);
  return Interval(min_gap_possible, max_gap);
}

Result<bool> CertifyFairnessUnderBias(const std::vector<int>& predictions,
                                      const std::vector<int>& groups,
                                      double max_weight_ratio,
                                      double threshold) {
  NDE_ASSIGN_OR_RETURN(
      Interval range,
      DemographicParityRange(predictions, groups, max_weight_ratio));
  return range.hi() <= threshold;
}

}  // namespace nde
