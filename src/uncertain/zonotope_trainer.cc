#include "uncertain/zonotope_trainer.h"

#include <algorithm>
#include <cmath>

namespace nde {

Interval ZonotopeModel::Predict(const std::vector<double>& x) const {
  NDE_CHECK_EQ(x.size(), weights.size());
  AffineForm acc = bias;
  for (size_t j = 0; j < x.size(); ++j) acc += x[j] * weights[j];
  return acc.ToInterval();
}

Interval ZonotopeModel::PredictTrainingRow(const SymbolicRegressionDataset& data,
                                           size_t row) const {
  NDE_CHECK_LT(row, data.size());
  NDE_CHECK_EQ(data.num_features(), weights.size());
  AffineForm acc = bias;
  for (size_t j = 0; j < weights.size(); ++j) {
    const Interval& cell = data.features[row][j];
    AffineForm x =
        cell_symbols[row][j] == kNoSymbol
            ? AffineForm::Constant(cell.mid())
            : AffineForm::Symbol(cell.mid(), 0.5 * cell.width(),
                                 cell_symbols[row][j]);
    acc += weights[j] * x;
  }
  return acc.ToInterval();
}

double ZonotopeModel::WorstCaseSquaredLoss(const std::vector<double>& x,
                                           double y) const {
  AffineForm acc = bias;
  for (size_t j = 0; j < x.size(); ++j) acc += x[j] * weights[j];
  AffineForm residual = acc - AffineForm::Constant(y);
  return residual.Square().ToInterval().hi();
}

std::vector<Interval> ZonotopeModel::WeightIntervals() const {
  std::vector<Interval> out;
  out.reserve(weights.size() + 1);
  for (const AffineForm& w : weights) out.push_back(w.ToInterval());
  out.push_back(bias.ToInterval());
  return out;
}

double ZonotopeModel::TotalWeightWidth() const {
  double total = bias.ToInterval().width();
  for (const AffineForm& w : weights) total += w.ToInterval().width();
  return total;
}

Result<ZonotopeModel> TrainZorroZonotope(const SymbolicRegressionDataset& data,
                                         const ZorroOptions& options) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot train on empty data");
  }
  size_t n = data.size();
  size_t d = data.num_features();

  // Assign one shared noise symbol per uncertain cell and lift inputs.
  ZonotopeModel model;
  model.cell_symbols.assign(n, std::vector<uint32_t>(d, ZonotopeModel::kNoSymbol));
  std::vector<std::vector<AffineForm>> x(n, std::vector<AffineForm>(d));
  uint32_t next_symbol = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const Interval& cell = data.features[i][j];
      if (cell.is_point()) {
        x[i][j] = AffineForm::Constant(cell.lo());
      } else {
        model.cell_symbols[i][j] = next_symbol;
        x[i][j] = AffineForm::Symbol(cell.mid(), 0.5 * cell.width(),
                                     next_symbol);
        ++next_symbol;
      }
    }
  }

  model.weights.assign(d, AffineForm::Constant(0.0));
  model.bias = AffineForm::Constant(0.0);

  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<AffineForm> grad(d, AffineForm::Constant(0.0));
    AffineForm grad_bias = AffineForm::Constant(0.0);
    for (size_t i = 0; i < n; ++i) {
      AffineForm residual = model.bias - AffineForm::Constant(data.targets[i]);
      for (size_t j = 0; j < d; ++j) residual += model.weights[j] * x[i][j];
      for (size_t j = 0; j < d; ++j) grad[j] += residual * x[i][j];
      grad_bias += residual;
    }
    for (size_t j = 0; j < d; ++j) {
      AffineForm step = 2.0 * inv_n * grad[j] +
                        (2.0 * options.l2) * model.weights[j];
      model.weights[j] -= options.learning_rate * step;
    }
    model.bias -= options.learning_rate * (2.0 * inv_n * grad_bias);
  }
  return model;
}

double MaxWorstCaseLoss(const ZonotopeModel& model,
                        const RegressionDataset& test) {
  double worst = 0.0;
  for (size_t i = 0; i < test.size(); ++i) {
    worst = std::max(worst, model.WorstCaseSquaredLoss(test.features.Row(i),
                                                       test.targets[i]));
  }
  return worst;
}

}  // namespace nde
