#ifndef NDE_UNCERTAIN_MULTIPLICITY_H_
#define NDE_UNCERTAIN_MULTIPLICITY_H_

#include <vector>

#include "common/result.h"
#include "ml/linear_regression.h"
#include "uncertain/interval.h"

namespace nde {

/// Dataset-multiplicity analysis for ridge regression (in the spirit of
/// Meyer et al., "The Dataset Multiplicity Problem", FAccT 2023): how much
/// can a prediction move if up to `max_flips` training targets were wrong by
/// at most `max_perturbation` each?
///
/// Because ridge predictions are linear in the training targets
/// (prediction = a(x)^T y, see RidgeRegression::HatRow), the worst case is
/// exact: perturb the `max_flips` targets with the largest |a_i| by
/// +/- max_perturbation.
///
/// `model` must already be fitted on `train`.
Result<Interval> LabelPerturbationPredictionRange(
    const RidgeRegression& model, const std::vector<double>& x,
    size_t max_flips, double max_perturbation);

/// Binary variant: training targets are 0/1 and an adversary may flip up to
/// `max_flips` of them (y_i -> 1 - y_i). Exact range of the regression score
/// for input `x`. `train_targets` must match the data the model was fitted
/// on.
Result<Interval> LabelFlipPredictionRange(const RidgeRegression& model,
                                          const std::vector<double>& train_targets,
                                          const std::vector<double>& x,
                                          size_t max_flips);

/// A prediction is multiplicity-robust when its entire range stays on one
/// side of `threshold` (e.g. 0.5 for a 0/1 regression-as-classifier).
bool IsRobustPrediction(const Interval& range, double threshold);

/// Fraction of `queries` whose prediction is robust to `max_flips` binary
/// label flips — the per-dataset robustness rate reported in the dataset
/// multiplicity line of work.
Result<double> LabelFlipRobustRatio(const RidgeRegression& model,
                                    const std::vector<double>& train_targets,
                                    const Matrix& queries, size_t max_flips,
                                    double threshold);

}  // namespace nde

#endif  // NDE_UNCERTAIN_MULTIPLICITY_H_
