#include "uncertain/zorro.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace nde {

SymbolicRegressionDataset SymbolicRegressionDataset::FromConcrete(
    const RegressionDataset& data) {
  SymbolicRegressionDataset out;
  out.features.reserve(data.size());
  for (size_t i = 0; i < data.features.rows(); ++i) {
    std::vector<Interval> row;
    row.reserve(data.features.cols());
    for (size_t j = 0; j < data.features.cols(); ++j) {
      row.emplace_back(data.features(i, j));
    }
    out.features.push_back(std::move(row));
  }
  out.targets = data.targets;
  return out;
}

void SymbolicRegressionDataset::SetUncertain(size_t row, size_t col, double lo,
                                             double hi) {
  NDE_CHECK_LT(row, features.size());
  NDE_CHECK_LT(col, features[row].size());
  features[row][col] = Interval(lo, hi);
}

RegressionDataset SymbolicRegressionDataset::SampleWorld(Rng* rng) const {
  NDE_CHECK(rng != nullptr);
  RegressionDataset world;
  world.features = Matrix(features.size(), num_features());
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t j = 0; j < features[i].size(); ++j) {
      const Interval& cell = features[i][j];
      world.features(i, j) =
          cell.is_point() ? cell.lo() : rng->NextUniform(cell.lo(), cell.hi());
    }
  }
  world.targets = targets;
  return world;
}

Status SymbolicRegressionDataset::Validate() const {
  if (features.size() != targets.size()) {
    return Status::InvalidArgument(
        StrFormat("feature rows %zu != target count %zu", features.size(),
                  targets.size()));
  }
  size_t d = num_features();
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i].size() != d) {
      return Status::InvalidArgument(StrFormat("ragged row %zu", i));
    }
  }
  return Status::OK();
}

Result<SymbolicRegressionDataset> EncodeSymbolicMissing(
    const RegressionDataset& data, const std::vector<size_t>& missing_rows,
    size_t column, double lo, double hi) {
  if (column >= data.features.cols()) {
    return Status::InvalidArgument(
        StrFormat("column %zu out of range", column));
  }
  if (lo > hi) {
    return Status::InvalidArgument("lo must be <= hi");
  }
  SymbolicRegressionDataset out = SymbolicRegressionDataset::FromConcrete(data);
  for (size_t row : missing_rows) {
    if (row >= data.size()) {
      return Status::OutOfRange(StrFormat("row %zu out of range", row));
    }
    out.SetUncertain(row, column, lo, hi);
  }
  return out;
}

Interval ZorroModel::Predict(const std::vector<double>& x) const {
  return IntervalDot(weights, x) + bias;
}

Interval ZorroModel::Predict(const std::vector<Interval>& x) const {
  return IntervalDot(weights, x) + bias;
}

double ZorroModel::WorstCaseSquaredLoss(const std::vector<double>& x,
                                        double y) const {
  Interval residual = Predict(x) - Interval(y);
  return residual.Square().hi();
}

double ZorroModel::TotalWeightWidth() const {
  double total = bias.width();
  for (const Interval& w : weights) total += w.width();
  return total;
}

Result<ZorroModel> TrainZorro(const SymbolicRegressionDataset& data,
                              const ZorroOptions& options) {
  NDE_RETURN_IF_ERROR(data.Validate());
  if (data.size() == 0) {
    return Status::InvalidArgument("cannot train on empty data");
  }
  size_t n = data.size();
  size_t d = data.num_features();

  ZorroModel model;
  model.weights.assign(d, Interval(0.0));
  model.bias = Interval(0.0);

  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<Interval> grad(d, Interval(0.0));
    Interval grad_bias(0.0);
    for (size_t i = 0; i < n; ++i) {
      Interval residual = IntervalDot(model.weights, data.features[i]) +
                          model.bias - Interval(data.targets[i]);
      for (size_t j = 0; j < d; ++j) {
        grad[j] += residual * data.features[i][j];
      }
      grad_bias += residual;
    }
    for (size_t j = 0; j < d; ++j) {
      grad[j] = 2.0 * inv_n * grad[j] +
                (2.0 * options.l2) * model.weights[j];
      model.weights[j] -= options.learning_rate * grad[j];
    }
    grad_bias = 2.0 * inv_n * grad_bias;
    model.bias -= options.learning_rate * grad_bias;
  }
  return model;
}

std::vector<double> TrainConcreteGd(const RegressionDataset& data,
                                    const ZorroOptions& options) {
  // Mirrors TrainZorro exactly, with point arithmetic. Returns weights with
  // the bias appended as the last entry.
  size_t n = data.size();
  size_t d = data.features.cols();
  NDE_CHECK_GT(n, 0u);
  std::vector<double> w(d, 0.0);
  double b = 0.0;
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<double> grad(d, 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* xi = data.features.RowPtr(i);
      double residual = b - data.targets[i];
      for (size_t j = 0; j < d; ++j) residual += w[j] * xi[j];
      for (size_t j = 0; j < d; ++j) grad[j] += residual * xi[j];
      grad_bias += residual;
    }
    for (size_t j = 0; j < d; ++j) {
      grad[j] = 2.0 * inv_n * grad[j] + 2.0 * options.l2 * w[j];
      w[j] -= options.learning_rate * grad[j];
    }
    b -= options.learning_rate * 2.0 * inv_n * grad_bias;
  }
  w.push_back(b);
  return w;
}

double MaxWorstCaseLoss(const ZorroModel& model, const RegressionDataset& test) {
  double worst = 0.0;
  for (size_t i = 0; i < test.size(); ++i) {
    worst = std::max(worst, model.WorstCaseSquaredLoss(test.features.Row(i),
                                                       test.targets[i]));
  }
  return worst;
}

double MeanPredictionWidth(const ZorroModel& model, const Matrix& test_features) {
  if (test_features.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < test_features.rows(); ++i) {
    total += model.Predict(test_features.Row(i)).width();
  }
  return total / static_cast<double>(test_features.rows());
}

}  // namespace nde
