#include "uncertain/certain_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "ml/linear_regression.h"
#include "ml/svm.h"

namespace nde {

std::vector<size_t> IncompleteRegressionDataset::CompleteRows() const {
  std::vector<bool> incomplete(size(), false);
  for (const auto& [row, col] : missing_cells) {
    (void)col;
    if (row < incomplete.size()) incomplete[row] = true;
  }
  std::vector<size_t> complete;
  for (size_t i = 0; i < size(); ++i) {
    if (!incomplete[i]) complete.push_back(i);
  }
  return complete;
}

namespace {

Status ValidateIncomplete(const IncompleteRegressionDataset& data) {
  if (data.features.rows() != data.targets.size()) {
    return Status::InvalidArgument("feature/target size mismatch");
  }
  for (const auto& [row, col] : data.missing_cells) {
    if (row >= data.features.rows() || col >= data.features.cols()) {
      return Status::OutOfRange("missing cell out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<CertainModelResult> CheckCertainLinearModel(
    const IncompleteRegressionDataset& data, double lambda, double eps) {
  NDE_RETURN_IF_ERROR(ValidateIncomplete(data));
  std::vector<size_t> complete = data.CompleteRows();
  if (complete.empty()) {
    return Status::FailedPrecondition("no complete rows to fit on");
  }
  RegressionDataset complete_data;
  complete_data.features = data.features.SelectRows(complete);
  complete_data.targets.reserve(complete.size());
  for (size_t i : complete) complete_data.targets.push_back(data.targets[i]);

  RidgeRegression model(lambda);
  NDE_RETURN_IF_ERROR(model.Fit(complete_data));

  CertainModelResult result;
  result.weights = model.weights();
  result.intercept = model.intercept();

  // Features missing anywhere must carry zero weight.
  std::set<size_t> missing_features;
  std::set<size_t> incomplete_rows;
  for (const auto& [row, col] : data.missing_cells) {
    missing_features.insert(col);
    incomplete_rows.insert(row);
  }
  for (size_t j : missing_features) {
    result.max_missing_feature_weight = std::max(
        result.max_missing_feature_weight, std::fabs(result.weights[j]));
  }
  // Incomplete rows must have zero residual (computed with the missing cells
  // contributing nothing, which is exact when their weights are zero).
  for (size_t i : incomplete_rows) {
    double prediction = result.intercept;
    for (size_t j = 0; j < data.features.cols(); ++j) {
      bool cell_missing = false;
      for (const auto& [row, col] : data.missing_cells) {
        if (row == i && col == j) {
          cell_missing = true;
          break;
        }
      }
      if (!cell_missing) prediction += result.weights[j] * data.features(i, j);
    }
    result.max_incomplete_residual =
        std::max(result.max_incomplete_residual,
                 std::fabs(prediction - data.targets[i]));
  }
  result.certain = result.max_missing_feature_weight <= eps &&
                   result.max_incomplete_residual <= eps;
  return result;
}

Result<ApproxCertainResult> CheckApproximatelyCertainModel(
    const IncompleteRegressionDataset& data, double bound_lo, double bound_hi,
    double epsilon, double lambda) {
  NDE_RETURN_IF_ERROR(ValidateIncomplete(data));
  if (bound_lo > bound_hi) {
    return Status::InvalidArgument("bound_lo must be <= bound_hi");
  }
  std::vector<size_t> complete = data.CompleteRows();
  if (complete.empty()) {
    return Status::FailedPrecondition("no complete rows to fit on");
  }
  RegressionDataset complete_data;
  complete_data.features = data.features.SelectRows(complete);
  complete_data.targets.reserve(complete.size());
  for (size_t i : complete) complete_data.targets.push_back(data.targets[i]);

  RidgeRegression model(lambda);
  NDE_RETURN_IF_ERROR(model.Fit(complete_data));

  ApproxCertainResult result;
  result.complete_mse = model.MeanSquaredError(complete_data);

  // Interval evaluation of the full-data MSE with missing cells in bounds.
  std::vector<std::vector<Interval>> rows(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    rows[i].reserve(data.features.cols());
    for (size_t j = 0; j < data.features.cols(); ++j) {
      rows[i].emplace_back(data.features(i, j));
    }
  }
  for (const auto& [row, col] : data.missing_cells) {
    rows[row][col] = Interval(bound_lo, bound_hi);
  }
  Interval total(0.0);
  std::vector<Interval> weight_intervals;
  weight_intervals.reserve(model.weights().size());
  for (double w : model.weights()) weight_intervals.emplace_back(w);
  for (size_t i = 0; i < data.size(); ++i) {
    Interval residual = IntervalDot(weight_intervals, rows[i]) +
                        Interval(model.intercept()) -
                        Interval(data.targets[i]);
    total += residual.Square();
  }
  result.worst_case_mse = total.hi() / static_cast<double>(data.size());
  result.approximately_certain =
      result.worst_case_mse - result.complete_mse <= epsilon;
  return result;
}

std::vector<size_t> IncompleteClassificationDataset::CompleteRows() const {
  std::vector<bool> incomplete(size(), false);
  for (const auto& [row, col] : missing_cells) {
    (void)col;
    if (row < incomplete.size()) incomplete[row] = true;
  }
  std::vector<size_t> complete;
  for (size_t i = 0; i < size(); ++i) {
    if (!incomplete[i]) complete.push_back(i);
  }
  return complete;
}

Result<CertainSvmResult> CheckCertainSvmModel(
    const IncompleteClassificationDataset& data, double bound_lo,
    double bound_hi) {
  if (data.features.rows() != data.labels.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (bound_lo > bound_hi) {
    return Status::InvalidArgument("bound_lo must be <= bound_hi");
  }
  for (int label : data.labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be binary {0, 1}");
    }
  }
  for (const auto& [row, col] : data.missing_cells) {
    if (row >= data.features.rows() || col >= data.features.cols()) {
      return Status::OutOfRange("missing cell out of range");
    }
  }
  std::vector<size_t> complete = data.CompleteRows();
  if (complete.empty()) {
    return Status::FailedPrecondition("no complete rows to fit on");
  }
  MlDataset complete_data;
  complete_data.features = data.features.SelectRows(complete);
  for (size_t i : complete) complete_data.labels.push_back(data.labels[i]);

  LinearSvmOptions options;
  options.standardize = false;  // Bounds apply in raw feature space.
  LinearSvm svm(options);
  NDE_RETURN_IF_ERROR(svm.Fit(complete_data));

  // Interval margin y * (w x + b) for every incomplete row.
  std::vector<bool> incomplete(data.size(), false);
  for (const auto& [row, col] : data.missing_cells) {
    (void)col;
    incomplete[row] = true;
  }
  CertainSvmResult result;
  result.min_incomplete_margin = 1e300;
  const std::vector<double>& w = svm.weights();
  for (size_t i = 0; i < data.size(); ++i) {
    if (!incomplete[i]) continue;
    Interval score(svm.bias());
    for (size_t j = 0; j < data.features.cols(); ++j) {
      bool cell_missing = false;
      for (const auto& [row, col] : data.missing_cells) {
        if (row == i && col == j) {
          cell_missing = true;
          break;
        }
      }
      Interval x = cell_missing ? Interval(bound_lo, bound_hi)
                                : Interval(data.features(i, j));
      score += Interval(w[j]) * x;
    }
    double y = data.labels[i] == 1 ? 1.0 : -1.0;
    Interval margin = y * score;
    result.min_incomplete_margin =
        std::min(result.min_incomplete_margin, margin.lo());
  }
  result.certain = result.min_incomplete_margin >= 1.0;
  return result;
}

}  // namespace nde
