#ifndef NDE_UNCERTAIN_POISONING_H_
#define NDE_UNCERTAIN_POISONING_H_

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace nde {

/// Certified robustness of K-NN predictions to training-data poisoning, in
/// the spirit of the intrinsic certificates for nearest-neighbor/bagging
/// models (Jia et al. 2021; Section 2.3's certified-defense citations).
///
/// The *removal radius* of a query is the largest number r such that the
/// K-NN prediction cannot change no matter which r training points an
/// adversary deletes. For K-NN the optimal deletion adversary is simple:
/// deleting a point outside the current top-K never changes the neighbor
/// set, and deleting any current-winner point inside the top-K produces the
/// same successor neighbor set regardless of which one is chosen — so greedy
/// simulation computes the exact radius.

/// Exact removal radius for one query. Returns the number of adversarial
/// deletions the prediction provably survives (0 = a single deletion can
/// already flip it; at most train.size() - 1). Ties in distance and votes
/// follow KnnClassifier's deterministic rules.
size_t CertifiedRemovalRadius(const MlDataset& train,
                              const std::vector<double>& query, size_t k);

/// Insertion radius: the largest number of adversarially *added* points the
/// prediction survives. An optimal insertion adversary places points at
/// distance 0 with the strongest competitor's label, so the radius has a
/// closed form in terms of the top-K vote margin.
size_t CertifiedInsertionRadius(const MlDataset& train,
                                const std::vector<double>& query, size_t k);

/// Fraction of queries whose prediction is certified to survive `budget`
/// adversarial deletions — the certified-accuracy curve reported by the
/// certified-defense literature.
double CertifiedRemovalRatio(const MlDataset& train, const Matrix& queries,
                             size_t k, size_t budget);

}  // namespace nde

#endif  // NDE_UNCERTAIN_POISONING_H_
