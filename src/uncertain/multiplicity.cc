#include "uncertain/multiplicity.h"

#include <algorithm>
#include <cmath>

namespace nde {

Result<Interval> LabelPerturbationPredictionRange(
    const RidgeRegression& model, const std::vector<double>& x,
    size_t max_flips, double max_perturbation) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("model is not fitted");
  }
  if (max_perturbation < 0.0) {
    return Status::InvalidArgument("max_perturbation must be >= 0");
  }
  double base = model.PredictOne(x);
  std::vector<double> hat = model.HatRow(x);
  // Worst case: perturb the targets with the largest |a_i| coefficients.
  std::vector<double> magnitudes(hat.size());
  for (size_t i = 0; i < hat.size(); ++i) magnitudes[i] = std::fabs(hat[i]);
  size_t budget = std::min(max_flips, magnitudes.size());
  std::partial_sort(magnitudes.begin(),
                    magnitudes.begin() + static_cast<ptrdiff_t>(budget),
                    magnitudes.end(), std::greater<double>());
  double swing = 0.0;
  for (size_t i = 0; i < budget; ++i) swing += magnitudes[i] * max_perturbation;
  return Interval(base - swing, base + swing);
}

Result<Interval> LabelFlipPredictionRange(const RidgeRegression& model,
                                          const std::vector<double>& train_targets,
                                          const std::vector<double>& x,
                                          size_t max_flips) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("model is not fitted");
  }
  std::vector<double> hat = model.HatRow(x);
  if (hat.size() != train_targets.size()) {
    return Status::InvalidArgument("train_targets size mismatch with model");
  }
  double base = model.PredictOne(x);
  // Flipping y_i in {0,1} changes the prediction by a_i * (1 - 2 y_i).
  std::vector<double> deltas(hat.size());
  for (size_t i = 0; i < hat.size(); ++i) {
    if (train_targets[i] != 0.0 && train_targets[i] != 1.0) {
      return Status::InvalidArgument("binary flip analysis requires 0/1 targets");
    }
    deltas[i] = hat[i] * (1.0 - 2.0 * train_targets[i]);
  }
  size_t budget = std::min(max_flips, deltas.size());
  // Max increase: largest positive deltas; max decrease: most negative.
  std::vector<double> sorted = deltas;
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<ptrdiff_t>(budget),
                    sorted.end(), std::greater<double>());
  double up = 0.0;
  for (size_t i = 0; i < budget; ++i) up += std::max(sorted[i], 0.0);
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<ptrdiff_t>(budget),
                    sorted.end());
  double down = 0.0;
  for (size_t i = 0; i < budget; ++i) down += std::min(sorted[i], 0.0);
  return Interval(base + down, base + up);
}

bool IsRobustPrediction(const Interval& range, double threshold) {
  return range.lo() > threshold || range.hi() < threshold;
}

Result<double> LabelFlipRobustRatio(const RidgeRegression& model,
                                    const std::vector<double>& train_targets,
                                    const Matrix& queries, size_t max_flips,
                                    double threshold) {
  if (queries.rows() == 0) {
    return Status::InvalidArgument("no query rows");
  }
  size_t robust = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    NDE_ASSIGN_OR_RETURN(
        Interval range,
        LabelFlipPredictionRange(model, train_targets, queries.Row(q),
                                 max_flips));
    if (IsRobustPrediction(range, threshold)) ++robust;
  }
  return static_cast<double>(robust) / static_cast<double>(queries.rows());
}

}  // namespace nde
