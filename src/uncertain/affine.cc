#include "uncertain/affine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace nde {

AffineForm AffineForm::Constant(double value) {
  AffineForm form;
  form.center_ = value;
  return form;
}

AffineForm AffineForm::Symbol(double center, double radius, uint32_t symbol) {
  NDE_CHECK_GE(radius, 0.0);
  AffineForm form;
  form.center_ = center;
  if (radius > 0.0) form.terms_.push_back({symbol, radius});
  return form;
}

double AffineForm::Radius() const {
  double total = remainder_;
  for (const auto& [symbol, coeff] : terms_) {
    (void)symbol;
    total += std::fabs(coeff);
  }
  return total;
}

Interval AffineForm::ToInterval() const {
  double radius = Radius();
  return Interval(center_ - radius, center_ + radius);
}

AffineForm::Terms AffineForm::MergeTerms(const Terms& a, const Terms& b,
                                         double scale_b) {
  Terms out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].first < a[i].first) {
      out.push_back({b[j].first, scale_b * b[j].second});
      ++j;
    } else {
      double coeff = a[i].second + scale_b * b[j].second;
      if (coeff != 0.0) out.push_back({a[i].first, coeff});
      ++i;
      ++j;
    }
  }
  return out;
}

AffineForm operator+(const AffineForm& a, const AffineForm& b) {
  AffineForm out;
  out.center_ = a.center_ + b.center_;
  out.terms_ = AffineForm::MergeTerms(a.terms_, b.terms_, 1.0);
  out.remainder_ = a.remainder_ + b.remainder_;
  return out;
}

AffineForm operator-(const AffineForm& a, const AffineForm& b) {
  AffineForm out;
  out.center_ = a.center_ - b.center_;
  out.terms_ = AffineForm::MergeTerms(a.terms_, b.terms_, -1.0);
  out.remainder_ = a.remainder_ + b.remainder_;
  return out;
}

AffineForm operator*(double s, const AffineForm& a) {
  AffineForm out;
  out.center_ = s * a.center_;
  if (s != 0.0) {
    out.terms_ = a.terms_;
    for (auto& [symbol, coeff] : out.terms_) {
      (void)symbol;
      coeff *= s;
    }
  }
  out.remainder_ = std::fabs(s) * a.remainder_;
  return out;
}

AffineForm AffineForm::operator-() const { return -1.0 * *this; }

AffineForm& AffineForm::operator+=(const AffineForm& other) {
  *this = *this + other;
  return *this;
}

AffineForm& AffineForm::operator-=(const AffineForm& other) {
  *this = *this - other;
  return *this;
}

AffineForm operator*(const AffineForm& a, const AffineForm& b) {
  // x = x0 + X + rx E1, y = y0 + Y + ry E2 with X, Y the named parts.
  // x*y = x0 y0 + x0 Y + y0 X  (affine part)
  //     + x0 ry E2 + y0 rx E1 + (X + rx E1)(Y + ry E2)  (remainder part).
  AffineForm out;
  out.center_ = a.center_ * b.center_;
  AffineForm::Terms scaled_b = b.terms_;
  for (auto& [symbol, coeff] : scaled_b) {
    (void)symbol;
    coeff *= a.center_;
  }
  AffineForm::Terms scaled_a = a.terms_;
  for (auto& [symbol, coeff] : scaled_a) {
    (void)symbol;
    coeff *= b.center_;
  }
  out.terms_ = AffineForm::MergeTerms(scaled_a, scaled_b, 1.0);

  double dev_a = a.Radius();  // Includes remainder.
  double dev_b = b.Radius();
  out.remainder_ = std::fabs(a.center_) * b.remainder_ +
                   std::fabs(b.center_) * a.remainder_ + dev_a * dev_b;
  return out;
}

AffineForm AffineForm::Square() const {
  // x^2 = x0^2 + 2 x0 (X + r E) + (X + r E)^2.
  // The quadratic part lies in [0, dev^2]; re-center it as dev^2/2 +/- dev^2/2
  // so only half the quadratic range leaks into the remainder.
  AffineForm out;
  double dev = Radius();
  out.center_ = center_ * center_ + 0.5 * dev * dev;
  out.terms_ = terms_;
  for (auto& [symbol, coeff] : out.terms_) {
    (void)symbol;
    coeff *= 2.0 * center_;
  }
  out.remainder_ = 2.0 * std::fabs(center_) * remainder_ + 0.5 * dev * dev;
  return out;
}

double AffineForm::Evaluate(
    const std::vector<std::pair<uint32_t, double>>& assignment,
    double remainder_eps) const {
  NDE_CHECK_GE(remainder_eps, -1.0);
  NDE_CHECK_LE(remainder_eps, 1.0);
  double value = center_ + remainder_ * remainder_eps;
  for (const auto& [symbol, coeff] : terms_) {
    for (const auto& [assigned_symbol, eps] : assignment) {
      if (assigned_symbol == symbol) {
        NDE_CHECK_GE(eps, -1.0);
        NDE_CHECK_LE(eps, 1.0);
        value += coeff * eps;
        break;
      }
    }
  }
  return value;
}

std::string AffineForm::ToString() const {
  std::ostringstream os;
  os << center_;
  for (const auto& [symbol, coeff] : terms_) {
    os << (coeff >= 0 ? " + " : " - ") << std::fabs(coeff) << "*e" << symbol;
  }
  if (remainder_ > 0.0) os << " +/- " << remainder_;
  return os.str();
}

}  // namespace nde
