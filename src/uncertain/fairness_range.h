#ifndef NDE_UNCERTAIN_FAIRNESS_RANGE_H_
#define NDE_UNCERTAIN_FAIRNESS_RANGE_H_

#include <vector>

#include "common/result.h"
#include "uncertain/interval.h"

namespace nde {

/// Consistent-range approximation of fairness metrics under bounded selection
/// bias (simplified from Zhu et al., "Consistent Range Approximation for Fair
/// Predictive Modeling", VLDB 2023).
///
/// Bias model: the observed examples of each group were sampled from the
/// true population with unknown per-example inclusion propensities; the
/// ratio between any two propensities within a group is bounded by
/// `max_weight_ratio` (>= 1). Equivalently, each observed example carries an
/// unknown importance weight in [1, max_weight_ratio].

/// Exact range of a group's positive-prediction rate over all consistent
/// weightings. Closed form: with observed rate p and ratio r,
///   [p / (p + r(1-p)),  r p / (r p + (1-p))].
Interval PositiveRateRange(const std::vector<int>& group_predictions,
                           double max_weight_ratio);

/// Range of the demographic parity difference (max pairwise gap of
/// positive rates) across groups over all consistent weightings.
Result<Interval> DemographicParityRange(const std::vector<int>& predictions,
                                        const std::vector<int>& groups,
                                        double max_weight_ratio);

/// Certifies fairness despite selection bias: true when the *upper* end of
/// the demographic-parity-difference range stays below `threshold`, i.e. the
/// model is fair in every world consistent with the bias bound.
Result<bool> CertifyFairnessUnderBias(const std::vector<int>& predictions,
                                      const std::vector<int>& groups,
                                      double max_weight_ratio,
                                      double threshold);

}  // namespace nde

#endif  // NDE_UNCERTAIN_FAIRNESS_RANGE_H_
