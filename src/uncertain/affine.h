#ifndef NDE_UNCERTAIN_AFFINE_H_
#define NDE_UNCERTAIN_AFFINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "uncertain/interval.h"

namespace nde {

/// Affine form (the building block of zonotopes): a value represented as
///
///   x = c + sum_k a_k * eps_k + r * eps_new,   eps in [-1, 1]
///
/// where the eps_k are shared *named* noise symbols (one per uncertain input
/// cell) and `r >= 0` is an anonymous remainder absorbing non-affine error.
///
/// Unlike plain intervals, affine forms remember which uncertainty each value
/// depends on, so correlated terms cancel: x - x is exactly 0, and gradient
/// descent over uncertain data stays orders of magnitude tighter than with
/// interval arithmetic. This is the abstract domain of the Zorro line of work
/// ("From Possible Worlds to Possible Models").
///
/// All operations are sound: for any concrete assignment of the noise symbols
/// in [-1,1]^K, the concrete result of an operation lies in the concretization
/// of the affine result.
class AffineForm {
 public:
  /// The constant 0.
  AffineForm() : center_(0.0), remainder_(0.0) {}

  /// An exactly known constant.
  static AffineForm Constant(double value);

  /// An uncertain input: value in [center - radius, center + radius], tied to
  /// the shared noise symbol `symbol`. Two inputs created with the same
  /// symbol are treated as perfectly correlated. radius must be >= 0.
  static AffineForm Symbol(double center, double radius, uint32_t symbol);

  double center() const { return center_; }
  double remainder() const { return remainder_; }

  /// Total deviation sum_k |a_k| + r: half the concretization width.
  double Radius() const;

  /// Concretization [center - Radius(), center + Radius()].
  Interval ToInterval() const;

  /// True when the form is an exact constant.
  bool is_constant() const { return terms_.empty() && remainder_ == 0.0; }

  /// Arithmetic. Addition/subtraction/scaling are exact (no new error);
  /// multiplication introduces a remainder bounded by the standard affine-
  /// arithmetic product rule.
  friend AffineForm operator+(const AffineForm& a, const AffineForm& b);
  friend AffineForm operator-(const AffineForm& a, const AffineForm& b);
  friend AffineForm operator*(const AffineForm& a, const AffineForm& b);
  friend AffineForm operator*(double s, const AffineForm& a);
  AffineForm operator-() const;
  AffineForm& operator+=(const AffineForm& other);
  AffineForm& operator-=(const AffineForm& other);

  /// Tight square: exploits (sum_k a_k eps_k)^2 in [0, dev^2] to center the
  /// quadratic error, halving the loss versus self-multiplication.
  AffineForm Square() const;

  /// Evaluates the affine part at a concrete assignment of noise symbols
  /// (symbols absent from `assignment` evaluate as 0; the remainder term is
  /// evaluated at `remainder_eps` in [-1, 1]). For tests.
  double Evaluate(const std::vector<std::pair<uint32_t, double>>& assignment,
                  double remainder_eps = 0.0) const;

  /// Number of tracked noise symbols (diagnostics).
  size_t num_terms() const { return terms_.size(); }

  std::string ToString() const;

 private:
  /// Sorted by symbol id; no duplicates; no zero coefficients kept.
  using Terms = std::vector<std::pair<uint32_t, double>>;

  static Terms MergeTerms(const Terms& a, const Terms& b, double scale_b);

  double center_;
  Terms terms_;
  double remainder_;  // >= 0
};

}  // namespace nde

#endif  // NDE_UNCERTAIN_AFFINE_H_
