#include "uncertain/poisoning.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace nde {

namespace {

/// Deterministic K-NN vote over the non-deleted points: nearest K (distance
/// ties by index), majority label (ties toward the smaller class id).
int Vote(const std::vector<double>& distances, const std::vector<int>& labels,
         const std::vector<bool>& deleted, size_t k, int num_classes) {
  std::vector<size_t> order;
  order.reserve(distances.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    if (!deleted[i]) order.push_back(i);
  }
  size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&distances](size_t a, size_t b) {
                      if (distances[a] != distances[b]) {
                        return distances[a] < distances[b];
                      }
                      return a < b;
                    });
  std::vector<size_t> votes(static_cast<size_t>(num_classes), 0);
  for (size_t pos = 0; pos < take; ++pos) {
    ++votes[static_cast<size_t>(labels[order[pos]])];
  }
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (votes[static_cast<size_t>(c)] > votes[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

std::vector<double> QueryDistances(const MlDataset& train,
                                   const std::vector<double>& query) {
  NDE_CHECK_EQ(query.size(), train.features.cols());
  std::vector<double> distances(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    const double* row = train.features.RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < query.size(); ++j) {
      double diff = row[j] - query[j];
      acc += diff * diff;
    }
    distances[i] = acc;
  }
  return distances;
}

}  // namespace

size_t CertifiedRemovalRadius(const MlDataset& train,
                              const std::vector<double>& query, size_t k) {
  NDE_CHECK_GE(k, 1u);
  NDE_CHECK_GT(train.size(), 0u);
  int num_classes = std::max(train.NumClasses(), 1);
  std::vector<double> distances = QueryDistances(train, query);
  std::vector<bool> deleted(train.size(), false);

  int winner = Vote(distances, train.labels, deleted, k, num_classes);
  // Winner-class points in nearest-first order (the optimal deletion order:
  // deleting non-winner points never reduces the winner's top-K votes, and
  // among winner points the nearest ones occupy the top-K slots).
  std::vector<size_t> winner_points;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train.labels[i] == winner) winner_points.push_back(i);
  }
  std::sort(winner_points.begin(), winner_points.end(),
            [&distances](size_t a, size_t b) {
              if (distances[a] != distances[b]) {
                return distances[a] < distances[b];
              }
              return a < b;
            });

  size_t radius = 0;
  for (size_t i : winner_points) {
    if (radius + 1 >= train.size()) break;  // Cannot delete everything.
    deleted[i] = true;
    if (Vote(distances, train.labels, deleted, k, num_classes) != winner) {
      return radius;
    }
    ++radius;
  }
  // Deleting every winner point never flipped the vote (only possible when
  // all points share the winning label): the prediction survives any
  // meaningful budget.
  return train.size() - 1;
}

size_t CertifiedInsertionRadius(const MlDataset& train,
                                const std::vector<double>& query, size_t k) {
  NDE_CHECK_GE(k, 1u);
  NDE_CHECK_GT(train.size(), 0u);
  int num_classes = std::max(train.NumClasses(), 2);
  std::vector<double> distances = QueryDistances(train, query);
  std::vector<bool> deleted(train.size(), false);
  int winner = Vote(distances, train.labels, deleted, k, num_classes);

  // Nearest-first training order, reused below.
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&distances](size_t a, size_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  });

  // Optimal insertion adversary: m copies of one competitor label at
  // distance zero. They occupy the first m top-K slots; the remaining
  // k - m slots hold the nearest original points.
  size_t min_flip = train.size() + k + 1;
  for (int competitor = 0; competitor < num_classes; ++competitor) {
    if (competitor == winner) continue;
    for (size_t m = 1; m <= k; ++m) {
      std::vector<size_t> votes(static_cast<size_t>(num_classes), 0);
      votes[static_cast<size_t>(competitor)] += m;
      size_t native = std::min(k - m, train.size());
      for (size_t pos = 0; pos < native; ++pos) {
        ++votes[static_cast<size_t>(train.labels[order[pos]])];
      }
      int best = 0;
      for (int c = 1; c < num_classes; ++c) {
        if (votes[static_cast<size_t>(c)] > votes[static_cast<size_t>(best)]) {
          best = c;
        }
      }
      if (best != winner) {
        min_flip = std::min(min_flip, m);
        break;
      }
    }
  }
  if (min_flip > k) {
    // Even k adversarial points (the whole neighborhood) cannot flip it —
    // only possible via tie-breaking toward the winner; report k.
    return k;
  }
  return min_flip - 1;
}

double CertifiedRemovalRatio(const MlDataset& train, const Matrix& queries,
                             size_t k, size_t budget) {
  if (queries.rows() == 0) return 0.0;
  size_t certified = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    if (CertifiedRemovalRadius(train, queries.Row(q), k) >= budget) {
      ++certified;
    }
  }
  return static_cast<double>(certified) / static_cast<double>(queries.rows());
}

}  // namespace nde
