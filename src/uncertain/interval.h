#ifndef NDE_UNCERTAIN_INTERVAL_H_
#define NDE_UNCERTAIN_INTERVAL_H_

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"

namespace nde {

/// Closed real interval [lo, hi] with standard interval arithmetic — the
/// abstract domain used by the Zorro-style symbolic trainer to soundly
/// over-approximate every possible world of an uncertain dataset.
///
/// All operations satisfy the inclusion property: for any a in A and b in B,
/// (a op b) lies in (A op B).
class Interval {
 public:
  /// Degenerate interval [0, 0].
  Interval() : lo_(0.0), hi_(0.0) {}

  /// Degenerate interval [v, v] (an exactly known value).
  explicit Interval(double v) : lo_(v), hi_(v) {}

  /// [lo, hi]; requires lo <= hi.
  Interval(double lo, double hi) : lo_(lo), hi_(hi) {
    NDE_CHECK_LE(lo, hi);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const { return hi_ - lo_; }
  double mid() const { return 0.5 * (lo_ + hi_); }
  bool is_point() const { return lo_ == hi_; }

  bool Contains(double v) const { return lo_ <= v && v <= hi_; }
  bool ContainsInterval(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  bool Intersects(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// Smallest interval containing both.
  static Interval Hull(const Interval& a, const Interval& b) {
    return Interval(std::min(a.lo_, b.lo_), std::max(a.hi_, b.hi_));
  }

  Interval operator-() const { return Interval(-hi_, -lo_); }

  friend Interval operator+(const Interval& a, const Interval& b) {
    return Interval(a.lo_ + b.lo_, a.hi_ + b.hi_);
  }
  friend Interval operator-(const Interval& a, const Interval& b) {
    return Interval(a.lo_ - b.hi_, a.hi_ - b.lo_);
  }
  friend Interval operator*(const Interval& a, const Interval& b) {
    double p1 = a.lo_ * b.lo_;
    double p2 = a.lo_ * b.hi_;
    double p3 = a.hi_ * b.lo_;
    double p4 = a.hi_ * b.hi_;
    return Interval(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
  }
  friend Interval operator*(double s, const Interval& a) {
    return Interval(s) * a;
  }
  friend Interval operator+(const Interval& a, double s) {
    return Interval(a.lo_ + s, a.hi_ + s);
  }

  Interval& operator+=(const Interval& other) {
    lo_ += other.lo_;
    hi_ += other.hi_;
    return *this;
  }
  Interval& operator-=(const Interval& other) {
    *this = *this - other;
    return *this;
  }

  /// Interval square: tight (not via self-multiplication, which would lose
  /// the dependency between the two factors).
  Interval Square() const {
    if (lo_ >= 0.0) return Interval(lo_ * lo_, hi_ * hi_);
    if (hi_ <= 0.0) return Interval(hi_ * hi_, lo_ * lo_);
    return Interval(0.0, std::max(lo_ * lo_, hi_ * hi_));
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

/// Interval dot product sum_j a_j * b_j.
Interval IntervalDot(const std::vector<Interval>& a,
                     const std::vector<Interval>& b);

/// Mixed dot product with a concrete vector.
Interval IntervalDot(const std::vector<Interval>& a,
                     const std::vector<double>& b);

}  // namespace nde

#endif  // NDE_UNCERTAIN_INTERVAL_H_
