#ifndef NDE_UNCERTAIN_CERTAIN_KNN_H_
#define NDE_UNCERTAIN_CERTAIN_KNN_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "uncertain/interval.h"

namespace nde {

/// A classification dataset whose feature cells are intervals — incomplete
/// information in the sense of "Nearest Neighbor Classifiers over Incomplete
/// Information: From Certain Answers to Certain Predictions" (Karlaš et al.,
/// VLDB 2020). Labels are exact.
struct UncertainClassificationDataset {
  std::vector<std::vector<Interval>> features;  ///< n rows of d intervals
  std::vector<int> labels;

  size_t size() const { return labels.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features.front().size();
  }

  static UncertainClassificationDataset FromConcrete(const MlDataset& data);
  void SetUncertain(size_t row, size_t col, double lo, double hi);

  /// Draws a possible world (uniform per uncertain cell).
  MlDataset SampleWorld(Rng* rng) const;

  /// Minimum / maximum possible squared distance from row `i` to `query`.
  double MinSquaredDistance(size_t i, const std::vector<double>& query) const;
  double MaxSquaredDistance(size_t i, const std::vector<double>& query) const;
};

/// Decides whether the K-NN majority prediction for `query` is *certain*:
/// the same label in every possible world of the training data.
///
/// Method: for each candidate label y, adversarial worlds are constructed in
/// which the points of one competing class sit at their minimum possible
/// distance while all other points sit at their maximum; y is certain iff it
/// wins the (deterministic, lowest-class-id tie-break) vote in all of them.
/// Exact for binary labels; for multi-class it is sound (a returned label is
/// truly certain) and may rarely miss certainty.
///
/// Returns the certain label, or nullopt when the prediction depends on the
/// unknown values.
std::optional<int> CertainKnnPrediction(
    const UncertainClassificationDataset& train,
    const std::vector<double>& query, size_t k);

/// Fraction of `queries` rows with a certain K-NN prediction — the headline
/// robustness ratio of the certain-predictions line of work.
double CertainPredictionRatio(const UncertainClassificationDataset& train,
                              const Matrix& queries, size_t k);

}  // namespace nde

#endif  // NDE_UNCERTAIN_CERTAIN_KNN_H_
