#ifndef NDE_UNCERTAIN_CERTAIN_MODEL_H_
#define NDE_UNCERTAIN_CERTAIN_MODEL_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "uncertain/interval.h"

namespace nde {

/// A regression dataset with missing feature cells (the values stored at the
/// missing positions are ignored).
struct IncompleteRegressionDataset {
  Matrix features;
  std::vector<double> targets;
  std::vector<std::pair<size_t, size_t>> missing_cells;  ///< (row, col)

  size_t size() const { return targets.size(); }

  /// Rows without any missing cell, in order.
  std::vector<size_t> CompleteRows() const;
};

/// Outcome of the certain-model check (Zhen et al., "Certain and
/// Approximately Certain Models for Statistical Learning", SIGMOD 2024).
struct CertainModelResult {
  /// True when the model fitted on the complete rows is provably optimal for
  /// *every* imputation of the missing cells, so no cleaning is needed at
  /// all — the "do we even need to debug?" answer of Section 2.3.
  bool certain = false;
  /// Weights of the model fitted on the complete rows (bias last).
  std::vector<double> weights;
  double intercept = 0.0;
  /// Largest |residual| among incomplete rows (0 needed for certainty).
  double max_incomplete_residual = 0.0;
  /// Largest |w_j| over features missing somewhere (0 needed for certainty).
  double max_missing_feature_weight = 0.0;
};

/// Checks the sufficient certainty condition for ridge regression: with the
/// model w* fitted on the complete rows, the model is certain when every
/// incomplete row has zero residual and every feature that is missing
/// anywhere has zero weight — then no imputation can change the gradient, so
/// w* stays optimal in every possible world. Tolerance `eps` absorbs
/// floating-point noise.
Result<CertainModelResult> CheckCertainLinearModel(
    const IncompleteRegressionDataset& data, double lambda = 1e-3,
    double eps = 1e-6);

/// Approximately-certain check: trains on the complete rows and bounds, by
/// interval arithmetic with the missing cells ranging over
/// [bound_lo, bound_hi], the worst-case mean squared error over all possible
/// worlds. The model is approximately certain when
///   worst_case_mse - complete_rows_mse <= epsilon.
struct ApproxCertainResult {
  bool approximately_certain = false;
  double complete_mse = 0.0;
  double worst_case_mse = 0.0;
};

Result<ApproxCertainResult> CheckApproximatelyCertainModel(
    const IncompleteRegressionDataset& data, double bound_lo, double bound_hi,
    double epsilon, double lambda = 1e-3);

/// A binary classification dataset with missing feature cells.
struct IncompleteClassificationDataset {
  Matrix features;
  std::vector<int> labels;  ///< in {0, 1}
  std::vector<std::pair<size_t, size_t>> missing_cells;

  size_t size() const { return labels.size(); }
  std::vector<size_t> CompleteRows() const;
};

/// Certain-model check for the linear SVM (Zhen et al. 2024 cover SVMs as
/// well): with the model fitted on the complete rows, the model is certain
/// when every incomplete row lies strictly outside the margin in *every*
/// possible world — then its hinge subgradient is zero regardless of the
/// imputation, so the complete-rows solution stays stationary.
struct CertainSvmResult {
  bool certain = false;
  /// Smallest guaranteed margin y * f(x) over the incomplete rows (>= 1
  /// required for certainty). +inf when there are no incomplete rows.
  double min_incomplete_margin = 0.0;
};

/// `bound_lo`/`bound_hi` bound every missing cell's possible value. The SVM
/// is trained without feature standardization so the bounds apply directly.
Result<CertainSvmResult> CheckCertainSvmModel(
    const IncompleteClassificationDataset& data, double bound_lo,
    double bound_hi);

}  // namespace nde

#endif  // NDE_UNCERTAIN_CERTAIN_MODEL_H_
