#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace nde {

namespace {

const char* const kPositiveTokens[] = {
    "outstanding", "dedicated",  "brilliant", "reliable",   "innovative",
    "thorough",    "exceptional", "driven",   "meticulous", "inspiring",
    "talented",    "proactive",  "insightful", "capable",   "commendable",
    "exemplary",   "diligent",   "creative",  "trustworthy", "impressive"};

const char* const kNegativeTokens[] = {
    "unreliable", "careless",   "dismissive", "disorganized", "inconsistent",
    "negligent",  "uninspired", "apathetic",  "problematic",  "unprofessional",
    "tardy",      "distracted", "unmotivated", "abrasive",    "sloppy",
    "evasive",    "overbearing", "unprepared", "indifferent", "concerning"};

const char* const kNeutralTokens[] = {
    "project", "team",     "report",   "meeting", "analysis", "deadline",
    "process", "client",   "software", "budget",  "schedule", "document",
    "summary", "workflow", "training", "review",  "quarter",  "task",
    "office",  "feedback", "the",      "with",    "during",   "worked"};

constexpr size_t kNumPositive = std::size(kPositiveTokens);
constexpr size_t kNumNegative = std::size(kNegativeTokens);
constexpr size_t kNumNeutral = std::size(kNeutralTokens);

const char* const kSectors[] = {"healthcare", "tech", "finance", "retail"};
const char* const kDegrees[] = {"highschool", "bachelor", "master", "phd"};

/// Median over non-null numeric cells of a column; 0 when all null.
double NumericMedian(const std::vector<Value>& column) {
  std::vector<double> values;
  values.reserve(column.size());
  for (const Value& v : column) {
    if (!v.is_null()) values.push_back(v.AsNumeric());
  }
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

/// Selects approximately `fraction * n` rows, where rows flagged in
/// `high_risk` are `risk_multiplier` times more likely to be selected.
/// Returns sorted indices.
std::vector<size_t> BiasedSample(size_t n, double fraction,
                                 const std::vector<bool>& high_risk,
                                 double risk_multiplier, Rng* rng) {
  size_t target = static_cast<size_t>(std::llround(fraction * static_cast<double>(n)));
  target = std::min(target, n);
  std::vector<double> weights(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    if (!high_risk.empty() && high_risk[i]) weights[i] = risk_multiplier;
  }
  // Weighted sampling without replacement via exponential sort keys
  // (Efraimidis-Spirakis): key = u^(1/w); take the largest `target` keys.
  std::vector<std::pair<double, size_t>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    double u = std::max(rng->NextDouble(), 1e-300);
    keys[i] = {std::pow(u, 1.0 / weights[i]), i};
  }
  std::partial_sort(keys.begin(), keys.begin() + static_cast<ptrdiff_t>(target),
                    keys.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<size_t> chosen;
  chosen.reserve(target);
  for (size_t i = 0; i < target; ++i) chosen.push_back(keys[i].second);
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

MlDataset MakeBlobs(const BlobsOptions& options) {
  NDE_CHECK_GE(options.num_classes, 1);
  Rng rng(options.seed);
  // Random unit-ish centers scaled by separation. With an explicit
  // center_seed the centers come from their own stream, so matched
  // train/validation pairs can share the same task while varying examples.
  Rng center_rng(options.center_seed == 0 ? options.seed
                                          : options.center_seed);
  Rng* center_source = options.center_seed == 0 ? &rng : &center_rng;
  Matrix centers(static_cast<size_t>(options.num_classes),
                 options.num_features);
  for (size_t c = 0; c < centers.rows(); ++c) {
    for (size_t j = 0; j < centers.cols(); ++j) {
      centers(c, j) = options.separation * center_source->NextGaussian() /
                      std::sqrt(static_cast<double>(options.num_features));
    }
  }
  MlDataset data;
  data.features = Matrix(options.num_examples, options.num_features);
  data.labels.resize(options.num_examples);
  for (size_t i = 0; i < options.num_examples; ++i) {
    int label = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(options.num_classes)));
    data.labels[i] = label;
    for (size_t j = 0; j < options.num_features; ++j) {
      data.features(i, j) = centers(static_cast<size_t>(label), j) +
                            options.noise * rng.NextGaussian();
    }
  }
  return data;
}

HiringScenario MakeHiringScenario(const HiringScenarioOptions& options) {
  Rng rng(options.seed);
  HiringScenario scenario;

  // --- jobdetail table ---
  {
    TableBuilder builder;
    std::vector<int64_t> job_ids;
    std::vector<std::string> sectors;
    std::vector<double> ratings;
    std::vector<int64_t> salary_bands;
    for (size_t j = 0; j < options.num_jobs; ++j) {
      job_ids.push_back(static_cast<int64_t>(j));
      if (rng.NextBernoulli(options.healthcare_fraction)) {
        sectors.emplace_back("healthcare");
      } else {
        sectors.emplace_back(
            kSectors[1 + rng.NextBounded(std::size(kSectors) - 1)]);
      }
      ratings.push_back(1.0 + 4.0 * rng.NextDouble());
      salary_bands.push_back(rng.NextInt(1, 5));
    }
    scenario.jobdetail = TableBuilder()
                             .AddInt64Column("job_id", std::move(job_ids))
                             .AddStringColumn("sector", std::move(sectors))
                             .AddDoubleColumn("employer_rating", std::move(ratings))
                             .AddInt64Column("salary_band", std::move(salary_bands))
                             .Build();
  }

  // --- train table (letters) and social table ---
  std::vector<int64_t> person_ids;
  std::vector<int64_t> job_ids;
  std::vector<std::string> letters;
  std::vector<Value> degrees;
  std::vector<int64_t> ages;
  std::vector<std::string> sexes;
  std::vector<int64_t> sentiments;

  std::vector<int64_t> social_person_ids;
  std::vector<Value> twitter_handles;
  std::vector<int64_t> followers;

  for (size_t i = 0; i < options.num_applicants; ++i) {
    person_ids.push_back(static_cast<int64_t>(i));
    job_ids.push_back(rng.NextInt(0, static_cast<int64_t>(options.num_jobs) - 1));

    // Latent quality drives both the sentiment label and the token mix.
    double quality = rng.NextGaussian();
    int sentiment = quality > 0.0 ? 1 : 0;
    sentiments.push_back(sentiment);

    size_t length = static_cast<size_t>(rng.NextInt(18, 36));
    std::vector<std::string> tokens;
    tokens.reserve(length);
    double positive_rate = sentiment == 1 ? 0.34 : 0.08;
    double negative_rate = sentiment == 1 ? 0.08 : 0.34;
    for (size_t t = 0; t < length; ++t) {
      double u = rng.NextDouble();
      if (u < positive_rate) {
        tokens.emplace_back(kPositiveTokens[rng.NextBounded(kNumPositive)]);
      } else if (u < positive_rate + negative_rate) {
        tokens.emplace_back(kNegativeTokens[rng.NextBounded(kNumNegative)]);
      } else {
        tokens.emplace_back(kNeutralTokens[rng.NextBounded(kNumNeutral)]);
      }
    }
    letters.push_back(JoinStrings(tokens, " "));

    if (rng.NextBernoulli(0.05)) {
      degrees.push_back(Value::Null());
    } else {
      degrees.push_back(Value(std::string(
          kDegrees[rng.NextBounded(std::size(kDegrees))])));
    }
    ages.push_back(rng.NextInt(22, 65));
    sexes.emplace_back(rng.NextBernoulli(0.5) ? "f" : "m");

    social_person_ids.push_back(static_cast<int64_t>(i));
    if (rng.NextBernoulli(0.6)) {
      twitter_handles.push_back(Value(StrFormat("@applicant%zu", i)));
      followers.push_back(rng.NextInt(10, 5000));
    } else {
      twitter_handles.push_back(Value::Null());
      followers.push_back(0);
    }
  }

  scenario.train = TableBuilder()
                       .AddInt64Column("person_id", std::move(person_ids))
                       .AddInt64Column("job_id", std::move(job_ids))
                       .AddStringColumn("letter_text", std::move(letters))
                       .AddValueColumn("degree", DataType::kString, std::move(degrees))
                       .AddInt64Column("age", std::move(ages))
                       .AddStringColumn("sex", std::move(sexes))
                       .AddInt64Column("sentiment", std::move(sentiments))
                       .Build();
  scenario.social =
      TableBuilder()
          .AddInt64Column("person_id", std::move(social_person_ids))
          .AddValueColumn("twitter", DataType::kString, std::move(twitter_handles))
          .AddInt64Column("followers", std::move(followers))
          .Build();
  return scenario;
}

DatasetSplits LoadRecommendationLetters(size_t num_examples, uint64_t seed) {
  // A single preprocessed table without complex features (Figure 2 setting):
  // six numeric letter summary statistics per example, moderately separable
  // so that clean accuracy lands around the low 0.8s as in the figure.
  Rng rng(seed);
  MlDataset all;
  size_t d = 6;
  all.features = Matrix(num_examples, d);
  all.labels.resize(num_examples);
  for (size_t i = 0; i < num_examples; ++i) {
    double quality = rng.NextGaussian();
    int label = quality > 0.0 ? 1 : 0;
    all.labels[i] = label;
    double direction = label == 1 ? 1.0 : -1.0;
    // Feature semantics: positive-token rate, negative-token rate, length,
    // exclamation count, formality score, hedging score.
    all.features(i, 0) = 0.2 + 0.13 * direction + 0.1 * rng.NextGaussian();
    all.features(i, 1) = 0.2 - 0.13 * direction + 0.1 * rng.NextGaussian();
    all.features(i, 2) = 27.0 + 3.0 * rng.NextGaussian();
    all.features(i, 3) = std::max(0.0, 1.0 + direction + rng.NextGaussian());
    all.features(i, 4) = 0.5 + 0.1 * direction + 0.18 * rng.NextGaussian();
    all.features(i, 5) = 0.5 - 0.1 * direction + 0.18 * rng.NextGaussian();
  }
  // 60 / 20 / 20 split.
  SplitResult first = TrainTestSplit(all, 0.4, &rng);
  SplitResult second = TrainTestSplit(first.test, 0.5, &rng);
  DatasetSplits splits;
  splits.train = std::move(first.train);
  splits.valid = std::move(second.train);
  splits.test = std::move(second.test);
  return splits;
}

CreditScenario MakeCreditScenario(const CreditScenarioOptions& options) {
  NDE_CHECK_GE(options.default_rate, 0.0);
  NDE_CHECK_LE(options.default_rate, 1.0);
  NDE_CHECK_GE(options.label_noise_fraction, 0.0);
  NDE_CHECK_LE(options.label_noise_fraction, 1.0);
  NDE_CHECK_GE(options.missing_sector_fraction, 0.0);
  NDE_CHECK_LE(options.missing_sector_fraction, 1.0);
  Rng rng(options.seed);
  size_t n = options.num_accounts;

  std::vector<int64_t> account_ids;
  std::vector<double> incomes;
  std::vector<double> debt_ratios;
  std::vector<int64_t> late_payments;
  std::vector<Value> sectors;
  std::vector<int64_t> defaulted;
  account_ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    account_ids.push_back(static_cast<int64_t>(i));
    int label = rng.NextBernoulli(options.default_rate) ? 1 : 0;
    defaulted.push_back(label);
    double direction = label == 1 ? -1.0 : 1.0;
    // Defaulters earn less, carry more debt relative to income, and have a
    // higher late-payment count; overlap keeps the task non-trivial.
    incomes.push_back(
        std::max(8.0, 52.0 + 14.0 * direction + 11.0 * rng.NextGaussian()));
    debt_ratios.push_back(std::clamp(
        0.38 - 0.16 * direction + 0.13 * rng.NextGaussian(), 0.0, 1.5));
    double late = (label == 1 ? 2.6 : 0.7) + 1.1 * rng.NextGaussian();
    late_payments.push_back(
        static_cast<int64_t>(std::max(0.0, std::round(late))));
    sectors.emplace_back(
        std::string(kSectors[rng.NextBounded(std::size(kSectors))]));
  }

  CreditScenario scenario;

  // Label noise: flip round(fraction * n) distinct labels, like
  // InjectLabelErrors does for MlDatasets.
  size_t flip_count = static_cast<size_t>(
      std::llround(options.label_noise_fraction * static_cast<double>(n)));
  scenario.corrupted_rows = rng.SampleWithoutReplacement(n, flip_count);
  std::sort(scenario.corrupted_rows.begin(), scenario.corrupted_rows.end());
  for (size_t i : scenario.corrupted_rows) defaulted[i] ^= 1;

  // Missingness: null out round(fraction * n) distinct sector cells (MCAR).
  size_t missing_count = static_cast<size_t>(
      std::llround(options.missing_sector_fraction * static_cast<double>(n)));
  scenario.missing_sector_rows = rng.SampleWithoutReplacement(n, missing_count);
  std::sort(scenario.missing_sector_rows.begin(),
            scenario.missing_sector_rows.end());
  for (size_t i : scenario.missing_sector_rows) sectors[i] = Value::Null();

  scenario.accounts =
      TableBuilder()
          .AddInt64Column("account_id", std::move(account_ids))
          .AddDoubleColumn("income", std::move(incomes))
          .AddDoubleColumn("debt_ratio", std::move(debt_ratios))
          .AddInt64Column("late_payments", std::move(late_payments))
          .AddValueColumn("sector", DataType::kString, std::move(sectors))
          .AddInt64Column("defaulted", std::move(defaulted))
          .Build();
  return scenario;
}

std::vector<size_t> InjectLabelErrors(MlDataset* data, double fraction,
                                      Rng* rng) {
  NDE_CHECK(data != nullptr);
  NDE_CHECK(rng != nullptr);
  NDE_CHECK_GE(fraction, 0.0);
  NDE_CHECK_LE(fraction, 1.0);
  int num_classes = std::max(data->NumClasses(), 2);
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(data->size())));
  std::vector<size_t> corrupted =
      rng->SampleWithoutReplacement(data->size(), count);
  for (size_t i : corrupted) {
    int offset = static_cast<int>(rng->NextBounded(
        static_cast<uint64_t>(num_classes - 1))) + 1;
    data->labels[i] = (data->labels[i] + offset) % num_classes;
  }
  std::sort(corrupted.begin(), corrupted.end());
  return corrupted;
}

std::vector<size_t> InjectFeatureNoise(MlDataset* data, double fraction,
                                       double noise_scale, Rng* rng) {
  NDE_CHECK(data != nullptr);
  NDE_CHECK(rng != nullptr);
  FeatureScaler scaler = FeatureScaler::Fit(data->features);
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(data->size())));
  std::vector<size_t> corrupted =
      rng->SampleWithoutReplacement(data->size(), count);
  for (size_t i : corrupted) {
    double* row = data->features.RowPtr(i);
    for (size_t j = 0; j < data->features.cols(); ++j) {
      row[j] += noise_scale * scaler.stddev[j] * rng->NextGaussian();
    }
  }
  std::sort(corrupted.begin(), corrupted.end());
  return corrupted;
}

std::vector<size_t> InjectOutliers(MlDataset* data, double fraction,
                                   double shift, Rng* rng) {
  NDE_CHECK(data != nullptr);
  NDE_CHECK(rng != nullptr);
  FeatureScaler scaler = FeatureScaler::Fit(data->features);
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(data->size())));
  std::vector<size_t> corrupted =
      rng->SampleWithoutReplacement(data->size(), count);
  for (size_t i : corrupted) {
    // Random direction on the unit sphere, scaled to `shift` global stddevs.
    std::vector<double> direction(data->features.cols());
    for (double& v : direction) v = rng->NextGaussian();
    double norm = Norm2(direction);
    if (norm < 1e-12) norm = 1.0;
    double* row = data->features.RowPtr(i);
    for (size_t j = 0; j < data->features.cols(); ++j) {
      row[j] += shift * scaler.stddev[j] * direction[j] / norm;
    }
  }
  std::sort(corrupted.begin(), corrupted.end());
  return corrupted;
}

const char* MissingnessToString(Missingness mechanism) {
  switch (mechanism) {
    case Missingness::kMcar:
      return "MCAR";
    case Missingness::kMar:
      return "MAR";
    case Missingness::kMnar:
      return "MNAR";
  }
  return "unknown";
}

Result<std::vector<size_t>> InjectMissingValues(
    Table* table, const std::string& column, double fraction,
    Missingness mechanism, Rng* rng, const std::string& driver_column) {
  if (table == nullptr || rng == nullptr) {
    return Status::InvalidArgument("table and rng must be non-null");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  NDE_ASSIGN_OR_RETURN(size_t col, table->schema().FieldIndex(column));
  size_t n = table->num_rows();

  std::vector<bool> high_risk;
  if (mechanism == Missingness::kMar) {
    if (driver_column.empty()) {
      return Status::InvalidArgument("MAR requires a driver_column");
    }
    NDE_ASSIGN_OR_RETURN(size_t driver, table->schema().FieldIndex(driver_column));
    if (table->schema().field(driver).type == DataType::kString) {
      return Status::InvalidArgument("MAR driver column must be numeric");
    }
    double median = NumericMedian(table->column(driver));
    high_risk.resize(n, false);
    for (size_t i = 0; i < n; ++i) {
      const Value& v = table->At(i, driver);
      high_risk[i] = !v.is_null() && v.AsNumeric() > median;
    }
  } else if (mechanism == Missingness::kMnar) {
    if (table->schema().field(col).type == DataType::kString) {
      return Status::InvalidArgument("MNAR target column must be numeric");
    }
    double median = NumericMedian(table->column(col));
    high_risk.resize(n, false);
    for (size_t i = 0; i < n; ++i) {
      const Value& v = table->At(i, col);
      high_risk[i] = !v.is_null() && v.AsNumeric() > median;
    }
  }

  std::vector<size_t> affected =
      BiasedSample(n, fraction, high_risk, /*risk_multiplier=*/3.0, rng);
  for (size_t i : affected) {
    NDE_RETURN_IF_ERROR(table->SetCell(i, col, Value::Null()));
  }
  return affected;
}

Result<std::vector<size_t>> InjectLabelErrorsTable(
    Table* table, const std::string& label_column, double fraction, Rng* rng) {
  if (table == nullptr || rng == nullptr) {
    return Status::InvalidArgument("table and rng must be non-null");
  }
  NDE_ASSIGN_OR_RETURN(size_t col, table->schema().FieldIndex(label_column));
  if (table->schema().field(col).type != DataType::kInt64) {
    return Status::InvalidArgument("label column must be int64");
  }
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(table->num_rows())));
  std::vector<size_t> affected =
      rng->SampleWithoutReplacement(table->num_rows(), count);
  std::sort(affected.begin(), affected.end());
  for (size_t i : affected) {
    const Value& v = table->At(i, col);
    if (v.is_null()) continue;
    int64_t flipped = v.as_int64() == 0 ? 1 : 0;
    NDE_RETURN_IF_ERROR(table->SetCell(i, col, Value(flipped)));
  }
  return affected;
}

Result<Table> InjectSelectionBias(const Table& table,
                                  const std::string& group_column,
                                  const Value& disadvantaged_value,
                                  double keep_probability, Rng* rng,
                                  std::vector<size_t>* kept) {
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must be non-null");
  }
  if (keep_probability < 0.0 || keep_probability > 1.0) {
    return Status::InvalidArgument("keep_probability must be in [0, 1]");
  }
  NDE_ASSIGN_OR_RETURN(size_t col, table.schema().FieldIndex(group_column));
  std::vector<size_t> indices;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    bool disadvantaged = table.At(i, col) == disadvantaged_value;
    if (!disadvantaged || rng->NextBernoulli(keep_probability)) {
      indices.push_back(i);
    }
  }
  if (kept != nullptr) *kept = indices;
  return table.SelectRows(indices);
}

}  // namespace nde
