#ifndef NDE_DATAGEN_SYNTHETIC_H_
#define NDE_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "ml/dataset.h"

namespace nde {

/// --- Numeric benchmark datasets --------------------------------------------

/// Options for the Gaussian-blobs classification generator.
struct BlobsOptions {
  size_t num_examples = 500;
  size_t num_features = 8;
  int num_classes = 2;
  double separation = 2.5;  ///< distance between class centers
  double noise = 1.0;       ///< within-class standard deviation
  uint64_t seed = 42;
  /// Seed for the class-center placement. 0 (default) reuses `seed`. Two
  /// generations share the same task (same centers) iff their center seeds
  /// match — set this explicitly when generating matched train/validation
  /// sets with different example seeds.
  uint64_t center_seed = 0;
};

/// Generates a classification dataset of Gaussian class blobs with randomly
/// placed centers. Deterministic given the seeds; see
/// BlobsOptions::center_seed for generating matched dataset pairs.
MlDataset MakeBlobs(const BlobsOptions& options);

/// Train/validation/test bundle used throughout the hands-on workflows.
struct DatasetSplits {
  MlDataset train;
  MlDataset valid;
  MlDataset test;
};

/// --- The paper's hiring scenario -------------------------------------------

/// Options for the synthetic hiring scenario of the hands-on session: a set
/// of recommendation letters plus side tables with job details and social
/// media information (Section 3.1).
struct HiringScenarioOptions {
  size_t num_applicants = 600;
  size_t num_jobs = 40;
  /// Fraction of applicants working in the "healthcare" sector (the Figure 3
  /// pipeline filters on it, so it controls post-filter training size).
  double healthcare_fraction = 0.55;
  uint64_t seed = 42;
};

/// The three source tables of the scenario.
///
/// `train`: person_id, job_id, letter_text, degree (nullable), age, sex,
///          sentiment (label: 1 positive / 0 negative).
/// `jobdetail`: job_id, sector, employer_rating, salary_band.
/// `social`: person_id, twitter (nullable handle), followers.
///
/// Letter text is a bag of sentiment-bearing and neutral tokens: positive
/// letters draw more positive tokens, so hashed bag-of-words features are
/// genuinely predictive of the sentiment label, mirroring the role of the
/// SentenceBERT encoder in the paper's pipeline.
struct HiringScenario {
  Table train;
  Table jobdetail;
  Table social;
};

HiringScenario MakeHiringScenario(const HiringScenarioOptions& options);

/// Figure 2 workflow entry point (mirrors nde.load_recommendation_letters):
/// a single *preprocessed* table-free classification dataset with simple
/// numeric features derived from the letters, split into train/valid/test.
DatasetSplits LoadRecommendationLetters(size_t num_examples = 600,
                                        uint64_t seed = 42);

/// --- Credit-default scenario -------------------------------------------------

/// Options for the credit-default scoring scenario: a single-table loan book
/// whose label is whether the account defaulted. The second synthetic domain
/// next to hiring, so scenario-corpus tests are not tied to one schema.
struct CreditScenarioOptions {
  size_t num_accounts = 400;
  /// P(defaulted == 1) for each account, independently.
  double default_rate = 0.25;
  /// Fraction of labels flipped after generation (rounded to the nearest
  /// count), reported via CreditScenario::corrupted_rows. 0 disables.
  double label_noise_fraction = 0.0;
  /// Fraction of `sector` cells set to null (rounded to the nearest count).
  double missing_sector_fraction = 0.0;
  uint64_t seed = 42;
};

/// The generated loan book plus ground truth about injected errors.
///
/// `accounts`: account_id, income, debt_ratio, late_payments,
///             sector (nullable string), defaulted (label, int64 0/1).
///
/// Features are drawn conditioned on the label (defaulters have lower
/// income, higher debt ratios and more late payments), so the label is
/// genuinely learnable. Generation is deterministic given the seed.
struct CreditScenario {
  Table accounts;
  /// Rows whose label was flipped by `label_noise_fraction`, sorted.
  std::vector<size_t> corrupted_rows;
  /// Rows whose sector was nulled by `missing_sector_fraction`, sorted.
  std::vector<size_t> missing_sector_rows;
};

CreditScenario MakeCreditScenario(const CreditScenarioOptions& options);

/// --- Error injection (Figure 1 error taxonomy) ------------------------------

/// Flips the labels of a `fraction` of uniformly chosen examples to a
/// different class. Returns the corrupted indices (sorted).
std::vector<size_t> InjectLabelErrors(MlDataset* data, double fraction,
                                      Rng* rng);

/// Adds Gaussian noise with standard deviation `noise_scale` * (per-feature
/// stddev) to all features of a `fraction` of examples. Returns corrupted
/// indices (sorted).
std::vector<size_t> InjectFeatureNoise(MlDataset* data, double fraction,
                                       double noise_scale, Rng* rng);

/// Replaces a `fraction` of examples with out-of-distribution points: their
/// features are shifted by `shift` standard deviations in a random direction.
/// Returns corrupted indices (sorted).
std::vector<size_t> InjectOutliers(MlDataset* data, double fraction,
                                   double shift, Rng* rng);

/// Missing-value mechanisms (Rubin's taxonomy).
enum class Missingness {
  kMcar,  ///< missing completely at random
  kMar,   ///< probability depends on another (fully observed) column
  kMnar,  ///< probability depends on the missing value itself
};

const char* MissingnessToString(Missingness mechanism);

/// Sets a `fraction` of cells in `column` of `table` to null.
///   - kMcar: uniformly at random;
///   - kMar: rows with above-median value in `driver_column` are 3x more
///     likely to lose the value (driver must be numeric);
///   - kMnar: rows whose *own* value is above the column median are 3x more
///     likely to lose it (column must be numeric).
/// Returns the affected row indices (sorted), or an error for bad arguments.
Result<std::vector<size_t>> InjectMissingValues(Table* table,
                                                const std::string& column,
                                                double fraction,
                                                Missingness mechanism,
                                                Rng* rng,
                                                const std::string& driver_column = "");

/// Flips the binary int64 label column `label_column` (0 <-> 1) in a
/// `fraction` of rows of a source table. Returns affected rows (sorted).
Result<std::vector<size_t>> InjectLabelErrorsTable(Table* table,
                                                   const std::string& label_column,
                                                   double fraction, Rng* rng);

/// Selection bias: returns a subsample of `table` in which rows whose
/// `group_column` equals `disadvantaged_value` are kept only with probability
/// `keep_probability` (others always kept). Returns the biased table and the
/// kept source row indices via `kept` when non-null.
Result<Table> InjectSelectionBias(const Table& table,
                                  const std::string& group_column,
                                  const Value& disadvantaged_value,
                                  double keep_probability, Rng* rng,
                                  std::vector<size_t>* kept = nullptr);

}  // namespace nde

#endif  // NDE_DATAGEN_SYNTHETIC_H_
