#include "data/table.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace nde {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

Status Schema::AddField(Field field) {
  if (HasField(field.name)) {
    return Status::AlreadyExists(
        StrFormat("column '%s' already exists", field.name.c_str()));
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + DataTypeToString(f.type));
  }
  return JoinStrings(parts, ", ");
}

Table::Table(Schema schema)
    : schema_(std::move(schema)), columns_(schema_.num_fields()) {}

Result<Table> Table::FromRows(Schema schema,
                              std::vector<std::vector<Value>> rows) {
  Table table(std::move(schema));
  for (auto& row : rows) {
    NDE_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<const std::vector<Value>*> Table::ColumnByName(
    const std::string& name) const {
  NDE_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
  return &columns_[index];
}

Status Table::SetCell(size_t row, size_t col, Value value) {
  if (col >= columns_.size()) {
    return Status::OutOfRange(StrFormat("column %zu out of range", col));
  }
  if (row >= num_rows_) {
    return Status::OutOfRange(StrFormat("row %zu out of range", row));
  }
  if (!value.MatchesType(schema_.field(col).type)) {
    return Status::InvalidArgument(
        StrFormat("value type mismatch for column '%s' (%s)",
                  schema_.field(col).name.c_str(),
                  DataTypeToString(schema_.field(col).type)));
  }
  columns_[col][row] = std::move(value);
  return Status::OK();
}

std::vector<Value> Table::Row(size_t row) const {
  NDE_CHECK_LT(row, num_rows_);
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, schema has %zu columns", row.size(),
                  schema_.num_fields()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (!row[c].MatchesType(schema_.field(c).type)) {
      return Status::InvalidArgument(StrFormat(
          "cell %zu ('%s') has wrong type; expected %s, got '%s'", c,
          schema_.field(c).name.c_str(),
          DataTypeToString(schema_.field(c).type), row[c].ToString().c_str()));
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("schema mismatch in AppendTable");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                       other.columns_[c].end());
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

Status Table::AddColumn(Field field, std::vector<Value> values) {
  if (values.size() != num_rows_) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu values, table has %zu rows",
                  field.name.c_str(), values.size(), num_rows_));
  }
  for (const Value& v : values) {
    if (!v.MatchesType(field.type)) {
      return Status::InvalidArgument(
          StrFormat("value '%s' does not match type %s for column '%s'",
                    v.ToString().c_str(), DataTypeToString(field.type),
                    field.name.c_str()));
    }
  }
  NDE_RETURN_IF_ERROR(schema_.AddField(std::move(field)));
  columns_.push_back(std::move(values));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  NDE_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
  std::vector<Field> fields = schema_.fields();
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(index));
  schema_ = Schema(std::move(fields));
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

Result<Table> Table::SelectColumns(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<std::vector<Value>> cols;
  for (const std::string& name : names) {
    NDE_ASSIGN_OR_RETURN(size_t index, schema_.FieldIndex(name));
    fields.push_back(schema_.field(index));
    cols.push_back(columns_[index]);
  }
  Table out{Schema(std::move(fields))};
  out.columns_ = std::move(cols);
  out.num_rows_ = num_rows_;
  return out;
}

Table Table::SelectRows(const std::vector<size_t>& row_indices) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(row_indices.size());
    for (size_t r : row_indices) {
      NDE_CHECK_LT(r, num_rows_);
      out.columns_[c].push_back(columns_[c][r]);
    }
  }
  out.num_rows_ = row_indices.size();
  return out;
}

Table Table::FilterRows(const std::function<bool(size_t)>& predicate,
                        std::vector<size_t>* kept) const {
  std::vector<size_t> indices;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (predicate(r)) indices.push_back(r);
  }
  if (kept != nullptr) *kept = indices;
  return SelectRows(indices);
}

size_t Table::CountNulls(size_t col) const {
  NDE_CHECK_LT(col, columns_.size());
  size_t count = 0;
  for (const Value& v : columns_[col]) {
    if (v.is_null()) ++count;
  }
  return count;
}

Status Table::Validate() const {
  if (columns_.size() != schema_.num_fields()) {
    return Status::Internal("column count does not match schema");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].size() != num_rows_) {
      return Status::Internal(
          StrFormat("column '%s' has %zu values, expected %zu",
                    schema_.field(c).name.c_str(), columns_[c].size(),
                    num_rows_));
    }
    for (size_t r = 0; r < num_rows_; ++r) {
      if (!columns_[c][r].MatchesType(schema_.field(c).type)) {
        return Status::Internal(
            StrFormat("cell (%zu, %zu) violates column type %s", r, c,
                      DataTypeToString(schema_.field(c).type)));
      }
    }
  }
  return Status::OK();
}

std::string Table::DebugString(size_t max_rows) const {
  std::ostringstream os;
  os << "Table[" << num_rows_ << " rows] " << schema_.ToString();
  size_t show = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < show; ++r) {
    os << "\n  ";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << columns_[c][r].ToString();
    }
  }
  if (show < num_rows_) os << "\n  ... (" << (num_rows_ - show) << " more)";
  return os.str();
}

TableBuilder& TableBuilder::AddDoubleColumn(const std::string& name,
                                            std::vector<double> values) {
  std::vector<Value> cells;
  cells.reserve(values.size());
  for (double v : values) cells.emplace_back(v);
  return AddValueColumn(name, DataType::kDouble, std::move(cells));
}

TableBuilder& TableBuilder::AddInt64Column(const std::string& name,
                                           std::vector<int64_t> values) {
  std::vector<Value> cells;
  cells.reserve(values.size());
  for (int64_t v : values) cells.emplace_back(v);
  return AddValueColumn(name, DataType::kInt64, std::move(cells));
}

TableBuilder& TableBuilder::AddStringColumn(const std::string& name,
                                            std::vector<std::string> values) {
  std::vector<Value> cells;
  cells.reserve(values.size());
  for (std::string& v : values) cells.emplace_back(std::move(v));
  return AddValueColumn(name, DataType::kString, std::move(cells));
}

TableBuilder& TableBuilder::AddValueColumn(const std::string& name,
                                           DataType type,
                                           std::vector<Value> values) {
  if (!fields_.empty()) {
    NDE_CHECK_EQ(values.size(), columns_.front().size())
        << "column '" << name << "' length mismatch";
  }
  fields_.push_back(Field{name, type});
  columns_.push_back(std::move(values));
  return *this;
}

Table TableBuilder::Build() {
  Table table{Schema(fields_)};
  size_t rows = columns_.empty() ? 0 : columns_.front().size();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (auto& col : columns_) row.push_back(std::move(col[r]));
    Status s = table.AppendRow(std::move(row));
    NDE_CHECK(s.ok()) << s.ToString();
  }
  return table;
}

}  // namespace nde
