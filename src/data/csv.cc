#include "data/csv.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace nde {

namespace {

/// One parsed CSV record: its unquoted fields plus the 1-based physical line
/// it started on (quoted fields may span lines, so records and lines are not
/// one-to-one) and whether the record was a blank line (only whitespace, no
/// quotes or delimiters — such records are dropped at end of input, but a
/// quoted empty field `""` is a real one-null row, not a blank line).
struct RawRecord {
  std::vector<std::string> fields;
  size_t line_number = 1;
  bool blank = true;
};

/// Splits the whole input into records in one quote-aware scan. Unquoted LF
/// or CRLF terminates a record; inside quotes both are field content ("" is
/// an escaped quote). The final record is flushed even when the input does
/// not end in a newline, and a lone trailing '\r' at end of input closes the
/// record like a CRLF would. An unterminated quote is reported against the
/// line where the quote opened.
Status SplitCsvRecords(const std::string& text, char delimiter,
                       std::vector<RawRecord>* records) {
  records->clear();
  size_t line = 1;
  size_t quote_open_line = 1;
  RawRecord record;
  std::string current;
  bool in_quotes = false;
  bool record_started = false;  // any byte consumed since the last flush
  auto flush = [&]() {
    record.fields.push_back(std::move(current));
    current.clear();
    records->push_back(std::move(record));
    record = RawRecord{};
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      quote_open_line = line;
      record.blank = false;
      record_started = true;
    } else if (c == delimiter) {
      record.fields.push_back(std::move(current));
      current.clear();
      record.blank = false;
      record_started = true;
    } else if (c == '\n' ||
               (c == '\r' &&
                (i + 1 == text.size() || text[i + 1] == '\n'))) {
      if (c == '\r' && i + 1 < text.size()) ++i;  // consume the CRLF pair
      flush();
      ++line;
      record.line_number = line;
      record_started = false;
    } else {
      if (!std::isspace(static_cast<unsigned char>(c))) record.blank = false;
      current.push_back(c);
      record_started = true;
    }
  }
  if (in_quotes) {
    // A dangling quote means the record is truncated or corrupt; silently
    // accepting it would glue the rest of the file into one field.
    return Status::InvalidArgument(
        StrFormat("line %zu has an unterminated quoted field",
                  quote_open_line));
  }
  if (record_started || !record.fields.empty() || !current.empty()) {
    flush();  // input ended without a trailing newline
  }
  // Drop trailing blank lines (but never quoted-empty records, see above).
  while (!records->empty() && records->back().blank) records->pop_back();
  return Status::OK();
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options) {
  std::vector<RawRecord> raw_records;
  NDE_RETURN_IF_ERROR(
      SplitCsvRecords(text, options.delimiter, &raw_records));
  if (raw_records.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  size_t first_data_record = 0;
  if (options.has_header) {
    for (auto& n : raw_records[0].fields) {
      names.emplace_back(StripWhitespace(n));
    }
    first_data_record = 1;
  } else {
    for (size_t i = 0; i < raw_records[0].fields.size(); ++i) {
      names.push_back(StrFormat("c%zu", i));
    }
  }
  size_t num_cols = names.size();

  // Pass 1: validate record shapes and infer per-column types.
  std::vector<std::vector<std::string>> records;
  records.reserve(raw_records.size() - first_data_record);
  for (size_t i = first_data_record; i < raw_records.size(); ++i) {
    // Per-record chaos hook, keyed by the record index so probabilistic
    // injection replays bit-identically run to run.
    NDE_FAILPOINT_KEYED("csv.record", i - first_data_record);
    std::vector<std::string>& fields = raw_records[i].fields;
    size_t line_number = raw_records[i].line_number;
    if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_number,
                    fields.size(), num_cols));
    }
    if (options.max_field_bytes > 0) {
      for (size_t c = 0; c < fields.size(); ++c) {
        if (fields[c].size() > options.max_field_bytes) {
          return Status::InvalidArgument(StrFormat(
              "line %zu field %zu is %zu bytes, over the %zu-byte limit",
              line_number, c, fields[c].size(), options.max_field_bytes));
        }
      }
    }
    records.push_back(std::move(fields));
  }

  auto is_null_cell = [&options](const std::string& raw) {
    std::string trimmed(StripWhitespace(raw));
    return trimmed.empty() || trimmed == options.null_marker;
  };

  std::vector<DataType> types(num_cols, DataType::kInt64);
  std::vector<bool> saw_value(num_cols, false);
  for (const auto& record : records) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& raw = record[c];
      if (is_null_cell(raw)) continue;
      saw_value[c] = true;
      std::string trimmed(StripWhitespace(raw));
      int64_t iv;
      double dv;
      if (types[c] == DataType::kInt64 && !ParseInt64(trimmed, &iv)) {
        types[c] = DataType::kDouble;
      }
      if (types[c] == DataType::kDouble && !ParseDouble(trimmed, &dv)) {
        types[c] = DataType::kString;
      }
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (!saw_value[c]) types[c] = DataType::kString;  // All-null: default.
  }

  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    fields.push_back(Field{names[c], types[c]});
  }
  Table table{Schema(std::move(fields))};

  // Pass 2: materialize typed cells.
  for (const auto& record : records) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& raw = record[c];
      if (is_null_cell(raw)) {
        row.push_back(Value::Null());
        continue;
      }
      std::string trimmed(StripWhitespace(raw));
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t iv = 0;
          ParseInt64(trimmed, &iv);
          row.emplace_back(iv);
          break;
        }
        case DataType::kDouble: {
          double dv = 0.0;
          ParseDouble(trimmed, &dv);
          row.emplace_back(dv);
          break;
        }
        case DataType::kString:
          row.emplace_back(raw);
          break;
      }
    }
    NDE_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  NDE_FAILPOINT("csv.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::ostringstream os;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) os << delimiter;
    const std::string& name = table.schema().field(c).name;
    os << (NeedsQuoting(name, delimiter) ? QuoteField(name) : name);
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string line;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) line.push_back(delimiter);
      std::string cell = table.At(r, c).ToString();
      line += NeedsQuoting(cell, delimiter) ? QuoteField(cell) : cell;
    }
    // A single-column null row would render as a blank line, which the
    // reader drops at end of input; a quoted empty field round-trips to the
    // same null without being mistaken for a trailing blank line.
    if (line.empty()) line = "\"\"";
    os << line << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out << WriteCsvString(table, delimiter);
  if (!out) {
    return Status::IOError(StrFormat("failed writing '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace nde
