#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace nde {

namespace {

/// Splits one CSV record honoring double-quoted fields ("" escapes a quote).
/// `line_number` is 1-based, for error messages only.
Status SplitCsvRecord(const std::string& line, char delimiter,
                      size_t line_number, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    // A dangling quote means the record is truncated or corrupt; silently
    // accepting it would glue the rest of the line (and, in multi-line
    // inputs, often the rest of the file) into one field.
    return Status::InvalidArgument(
        StrFormat("line %zu has an unterminated quoted field", line_number));
  }
  fields->push_back(std::move(current));
  return Status::OK();
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options) {
  std::vector<std::string> lines;
  {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }
  // Drop trailing blank lines.
  while (!lines.empty() && StripWhitespace(lines.back()).empty()) {
    lines.pop_back();
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  size_t first_data_line = 0;
  std::vector<std::string> first;
  NDE_RETURN_IF_ERROR(
      SplitCsvRecord(lines[0], options.delimiter, 1, &first));
  if (options.has_header) {
    for (auto& n : first) names.emplace_back(StripWhitespace(n));
    first_data_line = 1;
  } else {
    for (size_t i = 0; i < first.size(); ++i) {
      names.push_back(StrFormat("c%zu", i));
    }
  }
  size_t num_cols = names.size();

  // Pass 1: collect raw cells and infer per-column types.
  std::vector<std::vector<std::string>> records;
  records.reserve(lines.size() - first_data_line);
  for (size_t i = first_data_line; i < lines.size(); ++i) {
    // Per-record chaos hook, keyed by the record index so probabilistic
    // injection replays bit-identically run to run.
    NDE_FAILPOINT_KEYED("csv.record", i - first_data_line);
    std::vector<std::string> fields;
    NDE_RETURN_IF_ERROR(
        SplitCsvRecord(lines[i], options.delimiter, i + 1, &fields));
    if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", i + 1,
                    fields.size(), num_cols));
    }
    if (options.max_field_bytes > 0) {
      for (size_t c = 0; c < fields.size(); ++c) {
        if (fields[c].size() > options.max_field_bytes) {
          return Status::InvalidArgument(StrFormat(
              "line %zu field %zu is %zu bytes, over the %zu-byte limit",
              i + 1, c, fields[c].size(), options.max_field_bytes));
        }
      }
    }
    records.push_back(std::move(fields));
  }

  auto is_null_cell = [&options](const std::string& raw) {
    std::string trimmed(StripWhitespace(raw));
    return trimmed.empty() || trimmed == options.null_marker;
  };

  std::vector<DataType> types(num_cols, DataType::kInt64);
  std::vector<bool> saw_value(num_cols, false);
  for (const auto& record : records) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& raw = record[c];
      if (is_null_cell(raw)) continue;
      saw_value[c] = true;
      std::string trimmed(StripWhitespace(raw));
      int64_t iv;
      double dv;
      if (types[c] == DataType::kInt64 && !ParseInt64(trimmed, &iv)) {
        types[c] = DataType::kDouble;
      }
      if (types[c] == DataType::kDouble && !ParseDouble(trimmed, &dv)) {
        types[c] = DataType::kString;
      }
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (!saw_value[c]) types[c] = DataType::kString;  // All-null: default.
  }

  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    fields.push_back(Field{names[c], types[c]});
  }
  Table table{Schema(std::move(fields))};

  // Pass 2: materialize typed cells.
  for (const auto& record : records) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& raw = record[c];
      if (is_null_cell(raw)) {
        row.push_back(Value::Null());
        continue;
      }
      std::string trimmed(StripWhitespace(raw));
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t iv = 0;
          ParseInt64(trimmed, &iv);
          row.emplace_back(iv);
          break;
        }
        case DataType::kDouble: {
          double dv = 0.0;
          ParseDouble(trimmed, &dv);
          row.emplace_back(dv);
          break;
        }
        case DataType::kString:
          row.emplace_back(raw);
          break;
      }
    }
    NDE_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  NDE_FAILPOINT("csv.open");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::ostringstream os;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) os << delimiter;
    const std::string& name = table.schema().field(c).name;
    os << (NeedsQuoting(name, delimiter) ? QuoteField(name) : name);
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << delimiter;
      std::string cell = table.At(r, c).ToString();
      os << (NeedsQuoting(cell, delimiter) ? QuoteField(cell) : cell);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out << WriteCsvString(table, delimiter);
  if (!out) {
    return Status::IOError(StrFormat("failed writing '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace nde
