#ifndef NDE_DATA_TABLE_H_
#define NDE_DATA_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/value.h"

namespace nde {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered collection of fields describing a table's columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const {
    NDE_CHECK_LT(i, fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True when a column named `name` exists.
  bool HasField(const std::string& name) const;

  /// Appends a field. Returns AlreadyExists on duplicate names.
  Status AddField(Field field);

  /// "name:type, name:type, ..." rendering.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

/// Columnar in-memory table: a schema plus one `std::vector<Value>` per
/// column, all of equal length. The substrate that pipeline operators
/// consume and produce.
///
/// Tables are value types (copyable); pipeline operators produce new tables
/// rather than mutating inputs, which keeps provenance reasoning simple.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Builds a table from a schema and row-major cells. Every row must have
  /// schema.num_fields() cells of matching (or null) type.
  static Result<Table> FromRows(Schema schema,
                                std::vector<std::vector<Value>> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Column access by index / name.
  const std::vector<Value>& column(size_t i) const {
    NDE_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  Result<const std::vector<Value>*> ColumnByName(const std::string& name) const;

  /// Cell access. Preconditions: indices in range.
  const Value& At(size_t row, size_t col) const {
    NDE_CHECK_LT(col, columns_.size());
    NDE_CHECK_LT(row, num_rows_);
    return columns_[col][row];
  }

  /// Overwrites one cell; the value must match the column type or be null.
  Status SetCell(size_t row, size_t col, Value value);

  /// Copy of row `row` as a vector of cells.
  std::vector<Value> Row(size_t row) const;

  /// Appends a row. The row must have one cell per column, type-compatible.
  Status AppendRow(std::vector<Value> row);

  /// Appends all rows of `other`; schemas must be equal.
  Status AppendTable(const Table& other);

  /// Adds a new column with the given values (must have num_rows() entries,
  /// each null or of type `field.type`). Fails on duplicate name.
  Status AddColumn(Field field, std::vector<Value> values);

  /// Removes the column named `name`.
  Status DropColumn(const std::string& name);

  /// New table with only the given columns, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// New table with the given rows (indices may repeat / reorder).
  Table SelectRows(const std::vector<size_t>& row_indices) const;

  /// Rows for which `predicate(row_index)` is true, plus the surviving row
  /// indices in `*kept` when non-null.
  Table FilterRows(const std::function<bool(size_t)>& predicate,
                   std::vector<size_t>* kept = nullptr) const;

  /// Number of nulls in column `col`.
  size_t CountNulls(size_t col) const;

  /// Validates internal consistency: column lengths, value/type agreement.
  Status Validate() const;

  /// Pretty table rendering for debugging (truncated).
  std::string DebugString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
};

/// Convenience builder for assembling tables column-by-column in tests,
/// generators and examples.
///
///     Table t = TableBuilder()
///                   .AddDoubleColumn("age", {34, 51})
///                   .AddStringColumn("sector", {"tech", "healthcare"})
///                   .Build();
class TableBuilder {
 public:
  TableBuilder& AddDoubleColumn(const std::string& name,
                                std::vector<double> values);
  TableBuilder& AddInt64Column(const std::string& name,
                               std::vector<int64_t> values);
  TableBuilder& AddStringColumn(const std::string& name,
                                std::vector<std::string> values);
  /// Adds a column of raw values (may contain nulls).
  TableBuilder& AddValueColumn(const std::string& name, DataType type,
                               std::vector<Value> values);

  /// Finalizes the table; aborts on inconsistent column lengths (builder
  /// misuse is a programming error, not an input error).
  Table Build();

 private:
  std::vector<Field> fields_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace nde

#endif  // NDE_DATA_TABLE_H_
