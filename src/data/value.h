#ifndef NDE_DATA_VALUE_H_
#define NDE_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/check.h"

namespace nde {

/// Logical column types supported by the table layer.
enum class DataType {
  kDouble = 0,
  kInt64 = 1,
  kString = 2,
};

/// Canonical lowercase name of a data type ("double", "int64", "string").
const char* DataTypeToString(DataType type);

/// A dynamically typed cell value: null, double, int64 or string.
///
/// `Value` is the unit of data flowing through pipeline operators before
/// feature encoding turns rows into numeric vectors. Nulls model missing
/// values — a first-class citizen in this library, since missing data is one
/// of the core error types the paper studies.
class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}

  /// Typed constructors (implicit on purpose: cells are written frequently).
  Value(double v) : repr_(v) {}               // NOLINT(runtime/explicit)
  Value(int64_t v) : repr_(v) {}              // NOLINT(runtime/explicit)
  Value(int v) : repr_(int64_t{v}) {}         // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Typed accessors. Preconditions: matching type (checked).
  double as_double() const {
    NDE_CHECK(is_double()) << "Value is not a double: " << ToString();
    return std::get<double>(repr_);
  }
  int64_t as_int64() const {
    NDE_CHECK(is_int64()) << "Value is not an int64: " << ToString();
    return std::get<int64_t>(repr_);
  }
  const std::string& as_string() const {
    NDE_CHECK(is_string()) << "Value is not a string: " << ToString();
    return std::get<std::string>(repr_);
  }

  /// Numeric view: double as-is, int64 widened. Precondition: numeric.
  double AsNumeric() const {
    if (is_double()) return std::get<double>(repr_);
    NDE_CHECK(is_int64()) << "Value is not numeric: " << ToString();
    return static_cast<double>(std::get<int64_t>(repr_));
  }

  /// The dynamic type of a non-null value. Precondition: !is_null().
  DataType type() const;

  /// True when the value is null or its dynamic type equals `type`.
  bool MatchesType(DataType type) const;

  /// Human/CSV-facing rendering; null renders as the empty string.
  std::string ToString() const;

  /// Exact equality: null == null, and values of different types are unequal.
  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Ordering for sort/group operations: null < double < int64 < string, with
  /// natural ordering within a type. (Cross-type numeric comparison is not
  /// performed; columns are homogeneous.)
  friend bool operator<(const Value& a, const Value& b) {
    return a.repr_ < b.repr_;
  }

  /// Hash usable in hash-join and group-by tables.
  size_t Hash() const;

 private:
  std::variant<std::monostate, double, int64_t, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace nde

#endif  // NDE_DATA_VALUE_H_
