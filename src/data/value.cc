#include "data/value.h"

#include <sstream>

namespace nde {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  NDE_CHECK(!is_null()) << "null Value has no dynamic type";
  if (is_double()) return DataType::kDouble;
  if (is_int64()) return DataType::kInt64;
  return DataType::kString;
}

bool Value::MatchesType(DataType type) const {
  return is_null() || this->type() == type;
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_string()) return as_string();
  std::ostringstream os;
  if (is_double()) {
    os << as_double();
  } else {
    os << as_int64();
  }
  return os.str();
}

size_t Value::Hash() const {
  // Type tag mixed with the per-type hash; keeps 1.0 and int64{1} distinct.
  size_t seed = static_cast<size_t>(repr_.index()) * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  if (is_double()) {
    double d = as_double();
    if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
    h = std::hash<double>{}(d);
  } else if (is_int64()) {
    h = std::hash<int64_t>{}(as_int64());
  } else if (is_string()) {
    h = std::hash<std::string>{}(as_string());
  }
  return seed ^ (h + 0x9e3779b9 + (seed << 6) + (seed >> 2));
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace nde
