#ifndef NDE_DATA_CSV_H_
#define NDE_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace nde {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  /// When true, the first line provides column names; otherwise columns are
  /// named "c0", "c1", ...
  bool has_header = true;
  /// Cells equal to this marker (after trimming) are parsed as null, in
  /// addition to empty cells.
  std::string null_marker = "n/a";
  /// Reject any field longer than this many bytes (0 = unlimited). A guard
  /// against corrupt inputs — an unclosed quote or binary garbage can glue
  /// megabytes into one "field"; better a typed error than a silent
  /// memory-hungry parse.
  size_t max_field_bytes = 0;
};

/// Parses CSV text into a Table. Column types are inferred from the data:
/// a column is int64 if every non-null cell parses as an integer, double if
/// every non-null cell parses as a number, and string otherwise.
///
/// Quoting follows RFC 4180: fields may be double-quoted, `""` escapes a
/// quote, and a quoted field may contain delimiters and line breaks (LF or
/// CRLF), so records can span physical lines. Records end at unquoted LF or
/// CRLF; a final record without a trailing newline is still read. Errors are
/// reported against the physical line where the record (or the offending
/// quote) started.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options = {});

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

/// Serializes a table to CSV text (header included, nulls as empty cells,
/// fields containing the delimiter/quotes/newlines are double-quoted).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace nde

#endif  // NDE_DATA_CSV_H_
